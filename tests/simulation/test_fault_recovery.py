"""Online fault recovery: engine equivalence and post-fault deadlock freedom.

The fault-injection axis only means something if both simulation engines
agree on what a failure does: ``simulate_design(..., cross_check=True)``
re-runs the compiled engine's run on the legacy object-per-flit simulator
and raises on any stats divergence, so every test here that passes under
``cross_check=True`` is a field-identity proof.

The deterministic ring scenario pins the semantics: a design that is
deadlock-free while healthy but whose only surviving routes after a link
failure form a cyclic CDG must *deadlock identically* in both engines when
recovery is reroute-only, and must *stay deadlock-free* when recovery
re-runs deadlock removal on the degraded design (the default).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchmarks.registry import get_benchmark, list_benchmarks
from repro.core.removal import remove_deadlocks
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph
from repro.simulation.events import EventSchedule
from repro.simulation.simulator import SimulationConfig, simulate_design
from repro.synthesis.builder import SynthesisConfig, synthesize_design

SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Switch count of the six-benchmark equivalence sweep (Figure 10 setting).
CROSS_CHECK_SWITCHES = 14


@lru_cache(maxsize=None)
def _protected(benchmark: str, switches: int = CROSS_CHECK_SWITCHES) -> NocDesign:
    traffic = get_benchmark(benchmark, seed=0)
    design = synthesize_design(traffic, SynthesisConfig(n_switches=switches, seed=0))
    return remove_deadlocks(design).design


def _schedules(design: NocDesign) -> List[EventSchedule]:
    """Two distinct schedules per design: link-only and link+router."""
    return [
        EventSchedule.random(
            design.topology,
            seed=1,
            link_failures=2,
            start_cycle=40,
            end_cycle=200,
            restore_after=150,
        ),
        EventSchedule.random(
            design.topology,
            seed=2,
            link_failures=1,
            router_failures=1,
            start_cycle=60,
            end_cycle=250,
        ),
    ]


class TestEngineEquivalenceUnderFaults:
    @pytest.mark.parametrize("soc_benchmark", list_benchmarks())
    @pytest.mark.parametrize("which", [0, 1])
    def test_cross_check_on_soc_benchmarks(self, soc_benchmark, which):
        design = _protected(soc_benchmark)
        schedule = _schedules(design)[which]
        config = SimulationConfig(
            injection_scale=1.5, seed=0, fault_schedule=schedule
        )
        # cross_check=True re-runs the legacy engine on the same config
        # (replaying the schedule) and raises on any stats divergence.
        stats = simulate_design(
            design,
            max_cycles=400,
            config=config,
            engine="compiled",
            cross_check=True,
        )
        assert stats.fault_events_applied > 0
        # Every recovery re-ran removal on the degraded design: the CDG
        # check after each batch must have come back acyclic.
        assert stats.post_fault_deadlock_free is True

    def test_fault_free_schedule_matches_no_schedule(self):
        design = _protected("D26_media", 8)
        config = SimulationConfig(injection_scale=1.0, seed=0)
        baseline = simulate_design(design, max_cycles=300, config=config)
        empty = simulate_design(
            design, max_cycles=300, config=config, fault_schedule={"events": []}
        )
        assert baseline == empty


def _diagonal_ring_design() -> NocDesign:
    """Four switches with a clockwise ring plus one-hop 'diagonal' links.

    Healthy, every flow rides its private diagonal — single-channel routes,
    so the CDG has no edges at all.  Failing all four diagonals forces each
    flow onto the two-hop clockwise detour, and those detours close the
    classic ring dependency cycle S0S1 -> S1S2 -> S2S3 -> S3S0 -> S0S1.
    """
    switches = [f"S{i}" for i in range(4)]
    topology = Topology("diag_ring")
    topology.add_switches(switches)
    for i in range(4):
        topology.add_link(switches[i], switches[(i + 1) % 4])  # clockwise ring
        topology.add_link(switches[i], switches[(i + 2) % 4])  # diagonal

    traffic = CommunicationGraph("diag_ring_traffic")
    routes = RouteSet()
    core_map: Dict[str, str] = {}
    for i in range(4):
        src, dst = switches[i], switches[(i + 2) % 4]
        flow = f"f{i}"
        src_core, dst_core = f"core_{flow}_src", f"core_{flow}_dst"
        traffic.add_core(src_core)
        traffic.add_core(dst_core)
        # High nominal bandwidth: with injection_scale >= 6 every flow's
        # Bernoulli rate saturates, so all four detours carry packets at
        # once — the precondition for the wormhole cycle to actually lock.
        traffic.add_flow(flow, src_core, dst_core, bandwidth=3000.0)
        core_map[src_core] = src
        core_map[dst_core] = dst
        routes.set_route(flow, Route([Channel(Link(src, dst), 0)]))

    return NocDesign(
        name="diag_ring",
        topology=topology,
        traffic=traffic,
        core_map=core_map,
        routes=routes,
    )


def _diagonal_failures(cycle: int, count: int = 4) -> EventSchedule:
    schedule = EventSchedule()
    for i in range(count):
        schedule.fail_link(cycle, f"S{i}", f"S{(i + 2) % 4}")
    return schedule


class TestDeadlockAfterFailure:
    """The scenario the axis exists for: healthy-free, faulted-deadlocking."""

    def _run(self, *, fault_recovery: str, engine: str = "compiled", cross_check=False):
        design = _diagonal_ring_design()
        config = SimulationConfig(
            injection_scale=8.0,
            buffer_depth=2,
            seed=0,
            fault_schedule=_diagonal_failures(30),
            fault_recovery=fault_recovery,
        )
        return simulate_design(
            design,
            max_cycles=600,
            config=config,
            engine=engine,
            cross_check=cross_check,
        )

    def test_healthy_design_is_deadlock_free(self):
        design = _diagonal_ring_design()
        config = SimulationConfig(injection_scale=8.0, buffer_depth=2, seed=0)
        stats = simulate_design(design, max_cycles=600, config=config)
        assert not stats.deadlock_detected

    def test_reroute_only_recovery_deadlocks_identically(self):
        compiled = self._run(fault_recovery="reroute", cross_check=True)
        legacy = self._run(fault_recovery="reroute", engine="legacy")
        assert compiled.deadlock_detected
        assert compiled.post_fault_deadlock_free is False
        assert legacy.deadlock_detected
        assert legacy.deadlock_cycle == compiled.deadlock_cycle
        assert legacy.deadlocked_channels == compiled.deadlocked_channels

    def test_removal_recovery_keeps_the_degraded_design_free(self):
        stats = self._run(fault_recovery="removal", cross_check=True)
        assert stats.fault_events_applied == 4
        assert not stats.deadlock_detected
        assert stats.post_fault_deadlock_free is True
        assert stats.flows_rerouted >= 4


class TestRandomScheduleProperties:
    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=60),
        scenario=st.sampled_from(["flows", "uniform", "hotspot"]),
        link_failures=st.integers(min_value=1, max_value=2),
        router_failures=st.integers(min_value=0, max_value=1),
    )
    def test_engines_agree_under_random_faults(
        self, seed, scenario, link_failures, router_failures
    ):
        design = _protected("D26_media", 8)
        schedule = EventSchedule.random(
            design.topology,
            seed=seed,
            link_failures=link_failures,
            router_failures=router_failures,
            start_cycle=20,
            end_cycle=150,
            restore_after=100,
        )
        config = SimulationConfig(
            injection_scale=2.0,
            seed=seed,
            traffic_scenario=scenario,
            fault_schedule=schedule,
        )
        # Raises on any compiled-vs-legacy stats divergence.
        simulate_design(
            design, max_cycles=250, config=config, engine="compiled", cross_check=True
        )

    @SETTINGS
    @given(
        fail_cycle=st.integers(min_value=10, max_value=200),
        count=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=60),
    )
    def test_ring_detour_verdicts_are_engine_identical(self, fail_cycle, count, seed):
        design = _diagonal_ring_design()
        config = SimulationConfig(
            injection_scale=6.0,
            buffer_depth=2,
            seed=seed,
            fault_schedule=_diagonal_failures(fail_cycle, count),
            fault_recovery="reroute",
        )
        # Whether or not this particular cut deadlocks, both engines must
        # tell the same story field by field.
        simulate_design(
            design, max_cycles=400, config=config, engine="compiled", cross_check=True
        )
