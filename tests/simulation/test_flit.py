"""Tests for packets and flits (repro.simulation.flit)."""

from repro.model.channels import Channel, Link
from repro.simulation.flit import Flit, Packet, make_flits


def make_packet(size=4):
    route = (Channel(Link("A", "B")), Channel(Link("B", "C")))
    return Packet(packet_id=1, flow_name="f0", route=route, size_flits=size, created_cycle=10)


class TestPacket:
    def test_latency_none_while_in_flight(self):
        assert make_packet().latency is None

    def test_latency_after_delivery(self):
        packet = make_packet()
        packet.delivered_cycle = 25
        assert packet.latency == 15

    def test_route_is_preserved(self):
        packet = make_packet()
        assert len(packet.route) == 2


class TestFlit:
    def test_head_and_tail_flags(self):
        packet = make_packet(size=3)
        flits = make_flits(packet)
        assert flits[0].is_head and not flits[0].is_tail
        assert not flits[1].is_head and not flits[1].is_tail
        assert flits[2].is_tail and not flits[2].is_head

    def test_single_flit_packet_is_head_and_tail(self):
        flits = make_flits(make_packet(size=1))
        assert flits[0].is_head and flits[0].is_tail

    def test_next_channel_progression(self):
        packet = make_packet()
        flit = make_flits(packet)[0]
        assert flit.next_channel == packet.route[0]
        flit.hops_done = 1
        assert flit.next_channel == packet.route[1]
        flit.hops_done = 2
        assert flit.next_channel is None

    def test_make_flits_count(self):
        assert len(make_flits(make_packet(size=7))) == 7
