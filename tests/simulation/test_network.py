"""Tests for the wormhole network scheduler (repro.simulation.network)."""

import pytest

from repro.errors import SimulationError
from repro.model.channels import Channel, Link
from repro.simulation.flit import Packet
from repro.simulation.network import WormholeNetwork
from repro.simulation.stats import SimulationStats


def make_packet(design, flow_name, packet_id=0, size=4, cycle=0):
    route = design.routes.route(flow_name)
    return Packet(packet_id, flow_name, route.channels, size, created_cycle=cycle)


def drive(network, stats, cycles):
    for cycle in range(cycles):
        network.step(cycle, stats)


class TestConstruction:
    def test_router_per_switch(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        assert set(network.routers) == set(simple_line_design.topology.switches)

    def test_buffers_for_every_channel(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        for channel in simple_line_design.topology.channels():
            assert network.buffer_of(channel) is not None

    def test_injection_queues_at_source_switch(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        assert "f0" in network.routers["A"].injection_queues
        assert "f1" in network.routers["C"].injection_queues


class TestSinglePacketDelivery:
    def test_packet_traverses_line(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        stats = SimulationStats("line")
        packet = make_packet(simple_line_design, "f0", size=3)
        network.inject(packet)
        drive(network, stats, 20)
        assert stats.packets_delivered == 1
        assert stats.flits_delivered == 3
        assert packet.delivered_cycle is not None
        assert network.flits_in_network() == 0

    def test_latency_at_least_hops_plus_serialisation(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        stats = SimulationStats("line")
        packet = make_packet(simple_line_design, "f0", size=4, cycle=0)
        network.inject(packet)
        drive(network, stats, 30)
        # The tail cannot be delivered before the last body flit has crossed
        # both links behind the head (wormhole serialisation).
        assert packet.latency >= 4
        assert packet.latency >= len(packet.route)

    def test_one_flit_per_link_per_cycle(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        stats = SimulationStats("line")
        network.inject(make_packet(simple_line_design, "f0", packet_id=0, size=4))
        network.inject(make_packet(simple_line_design, "f0", packet_id=1, size=4))
        drive(network, stats, 1)
        moved = sum(stats.channel_busy_cycles.values())
        assert moved <= simple_line_design.topology.link_count

    def test_unknown_flow_injection_rejected(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        bogus = Packet(0, "f0", simple_line_design.routes.route("f1").channels, 2, 0)
        bogus_flow = Packet(0, "zzz", (), 1, 0)
        with pytest.raises(Exception):
            network.inject(bogus_flow)


class TestWormholeSemantics:
    def test_packets_of_same_flow_keep_order(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        stats = SimulationStats("line")
        first = make_packet(simple_line_design, "f0", packet_id=0, size=3)
        second = make_packet(simple_line_design, "f0", packet_id=1, size=3)
        network.inject(first)
        network.inject(second)
        drive(network, stats, 40)
        assert stats.packets_delivered == 2
        assert first.delivered_cycle < second.delivered_cycle

    def test_two_flows_share_the_network(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        stats = SimulationStats("line")
        network.inject(make_packet(simple_line_design, "f0", packet_id=0, size=3))
        network.inject(make_packet(simple_line_design, "f1", packet_id=1, size=3))
        drive(network, stats, 40)
        assert stats.packets_delivered == 2

    def test_wait_for_edges_reflect_blocked_heads(self, ring_design_fixture):
        network = WormholeNetwork(ring_design_fixture, buffer_depth=1)
        stats = SimulationStats("ring")
        # Saturate the ring with long packets from every flow.
        for i, flow in enumerate(["F1", "F2", "F3", "F4"]):
            network.inject(make_packet(ring_design_fixture, flow, packet_id=i, size=8))
        drive(network, stats, 30)
        edges = network.wait_for_edges()
        assert all(isinstance(edge[0], Channel) for edge in edges)

    def test_flits_accounting(self, simple_line_design):
        network = WormholeNetwork(simple_line_design)
        stats = SimulationStats("line")
        network.inject(make_packet(simple_line_design, "f0", size=5))
        assert network.flits_pending_injection() == 5
        drive(network, stats, 2)
        assert network.flits_pending_injection() + network.flits_in_network() + (
            stats.flits_delivered
        ) == 5
