"""Tests for the top-level simulator (repro.simulation.simulator)."""

import pytest

from repro.core.removal import remove_deadlocks
from repro.errors import DeadlockDetected
from repro.routing.ordering import apply_resource_ordering
from repro.simulation.simulator import SimulationConfig, Simulator, simulate_design


class TestBasicRuns:
    def test_line_design_delivers_traffic(self, simple_line_design):
        stats = simulate_design(
            simple_line_design,
            max_cycles=2000,
            config=SimulationConfig(injection_scale=5.0, seed=0),
        )
        assert stats.packets_injected > 0
        assert stats.packets_delivered > 0
        assert not stats.deadlock_detected
        assert stats.average_latency > 0

    def test_mesh_design_delivers_traffic(self, small_mesh_design):
        stats = simulate_design(
            small_mesh_design,
            max_cycles=2000,
            config=SimulationConfig(injection_scale=2.0, seed=0),
        )
        assert stats.packets_delivered > 0
        assert not stats.deadlock_detected

    def test_drain_phase_empties_network(self, simple_line_design):
        simulator = Simulator(
            simple_line_design, SimulationConfig(injection_scale=5.0, seed=0)
        )
        stats = simulator.run(max_cycles=500)
        assert simulator.network.flits_in_network() == 0
        assert stats.packets_in_flight == 0

    def test_drain_exits_early_once_everything_delivered(self, simple_line_design):
        """The drain phase must stop as soon as all in-flight packets are
        delivered instead of spinning the full drain_cycles budget."""
        simulator = Simulator(
            simple_line_design, SimulationConfig(injection_scale=5.0, seed=0)
        )
        stats = simulator.run(max_cycles=200, drain_cycles=100_000)
        assert simulator.network.undelivered_flits == 0
        # A line design drains within a few route lengths, nowhere near the
        # huge budget: early exit means only a handful of drain cycles ran.
        assert stats.cycles_run < 200 + 1000

    def test_undelivered_counter_matches_scans(self, simple_line_design):
        """The O(1) counter equals the per-router scans at every boundary."""
        simulator = Simulator(
            simple_line_design, SimulationConfig(injection_scale=5.0, seed=0)
        )
        network = simulator.network
        assert network.undelivered_flits == 0
        simulator.run(max_cycles=50, drain=False)
        assert network.undelivered_flits == (
            network.flits_in_network() + network.flits_pending_injection()
        )

    def test_no_drain_option(self, simple_line_design):
        simulator = Simulator(
            simple_line_design, SimulationConfig(injection_scale=5.0, seed=0)
        )
        stats = simulator.run(max_cycles=100, drain=False)
        assert stats.cycles_run == 100

    def test_local_flows_delivered_through_ni(self, simple_line_design):
        design = simple_line_design.copy()
        design.core_map["c2"] = "A"
        design.routes.remove_route("f0")
        design.routes.remove_route("f1")
        stats = simulate_design(
            design, max_cycles=500, config=SimulationConfig(injection_scale=5.0)
        )
        assert stats.local_deliveries > 0
        assert stats.packets_delivered == stats.packets_injected

    def test_reproducible_for_same_seed(self, simple_line_design):
        config = SimulationConfig(injection_scale=5.0, seed=9)
        a = simulate_design(simple_line_design, max_cycles=800, config=config)
        b = simulate_design(simple_line_design, max_cycles=800, config=config)
        assert a.packets_injected == b.packets_injected
        assert a.latencies == b.latencies


class TestDeadlockBehaviour:
    def test_deadlock_reported_in_stats(self, ring_design_fixture):
        stats = simulate_design(
            ring_design_fixture,
            max_cycles=5000,
            config=SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1),
        )
        assert stats.deadlock_detected
        assert stats.deadlock_cycle <= stats.cycles_run

    def test_raise_on_deadlock(self, ring_design_fixture):
        with pytest.raises(DeadlockDetected):
            simulate_design(
                ring_design_fixture,
                max_cycles=5000,
                config=SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1),
                raise_on_deadlock=True,
            )

    def test_removal_prevents_deadlock(self, ring_design_fixture):
        config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)
        fixed = remove_deadlocks(ring_design_fixture).design
        stats = simulate_design(fixed, max_cycles=5000, config=config)
        assert not stats.deadlock_detected

    def test_resource_ordering_prevents_deadlock(self, ring_design_fixture):
        config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)
        ordered = apply_resource_ordering(ring_design_fixture).design
        stats = simulate_design(ordered, max_cycles=5000, config=config)
        assert not stats.deadlock_detected

    def test_deadlock_freedom_does_not_depend_on_seed(self, ring_design_fixture):
        fixed = remove_deadlocks(ring_design_fixture).design
        for seed in range(3):
            config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=seed)
            assert not simulate_design(fixed, max_cycles=3000, config=config).deadlock_detected


class TestValidation:
    def test_invalid_design_rejected(self, simple_line_design):
        del simple_line_design.core_map["c0"]
        with pytest.raises(Exception):
            Simulator(simple_line_design)
