"""Tests for VC buffers (repro.simulation.buffers)."""

import pytest

from repro.errors import SimulationError
from repro.model.channels import Channel, Link
from repro.simulation.buffers import VirtualChannelBuffer
from repro.simulation.flit import Packet, make_flits


def packet_with_id(packet_id, size=3):
    route = (Channel(Link("A", "B")),)
    return Packet(packet_id, "f0", route, size, created_cycle=0)


class TestCapacity:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(SimulationError):
            VirtualChannelBuffer(0)

    def test_free_slots_track_occupancy(self):
        buffer = VirtualChannelBuffer(2)
        flits = make_flits(packet_with_id(1, size=2))
        assert buffer.free_slots == 2
        buffer.push(flits[0])
        assert buffer.free_slots == 1
        assert buffer.occupancy == 1

    def test_overflow_rejected(self):
        buffer = VirtualChannelBuffer(1)
        flits = make_flits(packet_with_id(1, size=2))
        buffer.push(flits[0])
        assert not buffer.can_accept(flits[1])
        with pytest.raises(SimulationError):
            buffer.push(flits[1])


class TestFifoOrder:
    def test_pop_returns_in_push_order(self):
        buffer = VirtualChannelBuffer(3)
        flits = make_flits(packet_with_id(1, size=3))
        for flit in flits:
            buffer.push(flit)
        assert buffer.pop() is flits[0]
        assert buffer.pop() is flits[1]
        assert buffer.peek() is flits[2]

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            VirtualChannelBuffer(2).pop()

    def test_peek_empty_returns_none(self):
        assert VirtualChannelBuffer(2).peek() is None


class TestPacketInterleaving:
    def test_second_packet_rejected_until_tail_leaves(self):
        buffer = VirtualChannelBuffer(4)
        first = make_flits(packet_with_id(1, size=2))
        second = make_flits(packet_with_id(2, size=2))
        buffer.push(first[0])
        assert not buffer.can_accept(second[0])
        buffer.push(first[1])
        buffer.pop()
        # Tail of packet 1 still inside: packet 2 must wait.
        assert not buffer.can_accept(second[0])
        buffer.pop()
        assert buffer.can_accept(second[0])

    def test_reservation_held_when_drained_mid_packet(self):
        buffer = VirtualChannelBuffer(4)
        first = make_flits(packet_with_id(1, size=3))
        second = make_flits(packet_with_id(2, size=1))
        buffer.push(first[0])
        buffer.pop()  # head left, body/tail not yet arrived
        assert not buffer.can_accept(second[0])
        buffer.push(first[1])
        buffer.push(first[2])
        buffer.pop()
        buffer.pop()
        assert buffer.can_accept(second[0])
