"""Tests for the SoC benchmark reconstructions (repro.benchmarks.soc)."""

import pytest

from repro.benchmarks.soc import d26_media, d35_bott, d36_4, d36_6, d36_8, d38_tvopd


class TestCoreCounts:
    """The reconstructions must match the core counts the paper states."""

    def test_d26_media_has_26_cores(self):
        assert d26_media().core_count == 26

    def test_d36_variants_have_36_cores(self):
        assert d36_4().core_count == 36
        assert d36_6().core_count == 36
        assert d36_8().core_count == 36

    def test_d35_bott_has_35_cores(self):
        assert d35_bott().core_count == 35

    def test_d38_tvopd_has_38_cores(self):
        assert d38_tvopd().core_count == 38


class TestD36Fanout:
    """Each core sends data to exactly `fanout` other cores (paper, §5)."""

    @pytest.mark.parametrize(
        "factory, fanout", [(d36_4, 4), (d36_6, 6), (d36_8, 8)]
    )
    def test_out_degree_matches_fanout(self, factory, fanout):
        traffic = factory()
        for core in traffic.cores:
            assert traffic.out_degree(core) == fanout

    @pytest.mark.parametrize(
        "factory, fanout", [(d36_4, 4), (d36_6, 6), (d36_8, 8)]
    )
    def test_flow_count_is_cores_times_fanout(self, factory, fanout):
        assert factory().flow_count == 36 * fanout

    def test_denser_variant_has_more_traffic(self):
        assert d36_8().total_bandwidth > d36_4().total_bandwidth


class TestStructure:
    def test_d26_has_memory_hotspots(self):
        traffic = d26_media()
        # The shared memories receive traffic from several sources.
        assert traffic.in_degree("sdram0") >= 4

    def test_d26_video_pipeline_connected(self):
        traffic = d26_media()
        assert traffic.bandwidth_between("vid_in", "vid_preproc") > 0
        assert traffic.bandwidth_between("vid_enc", "vid_vlc") > 0

    def test_d35_bott_memories_are_bottlenecks(self):
        traffic = d35_bott()
        memory_in = sum(traffic.in_degree(m) for m in ("mem0", "mem1", "mem2"))
        assert memory_in >= 30

    def test_d38_has_display_sink(self):
        traffic = d38_tvopd()
        assert traffic.in_degree("disp_out") >= 2
        assert traffic.in_degree("blend") >= 5

    def test_all_bandwidths_positive(self):
        for factory in (d26_media, d36_4, d36_6, d36_8, d35_bott, d38_tvopd):
            assert all(f.bandwidth > 0 for f in factory().flows)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory", [d26_media, d36_4, d36_6, d36_8, d35_bott, d38_tvopd]
    )
    def test_same_seed_same_traffic(self, factory):
        first = factory(seed=3)
        second = factory(seed=3)
        assert [f.name for f in first.flows] == [f.name for f in second.flows]
        assert [f.bandwidth for f in first.flows] == [f.bandwidth for f in second.flows]

    def test_different_seed_changes_bandwidths(self):
        first = d36_8(seed=0)
        second = d36_8(seed=1)
        assert [f.bandwidth for f in first.flows] != [f.bandwidth for f in second.flows]
