"""Tests for the benchmark registry (repro.benchmarks.registry)."""

import pytest

from repro.benchmarks.registry import BENCHMARK_NAMES, get_benchmark, list_benchmarks
from repro.errors import BenchmarkError


class TestRegistry:
    def test_all_paper_benchmarks_registered(self):
        assert set(BENCHMARK_NAMES) == {
            "D26_media",
            "D36_4",
            "D36_6",
            "D36_8",
            "D35_bott",
            "D38_tvopd",
        }

    def test_list_benchmarks_returns_copy(self):
        names = list_benchmarks()
        names.append("fake")
        assert "fake" not in BENCHMARK_NAMES

    def test_get_benchmark_by_name(self):
        traffic = get_benchmark("D26_media")
        assert traffic.name == "D26_media"
        assert traffic.core_count == 26

    def test_get_benchmark_with_seed(self):
        a = get_benchmark("D36_8", seed=4)
        b = get_benchmark("D36_8", seed=4)
        assert [f.bandwidth for f in a.flows] == [f.bandwidth for f in b.flows]

    def test_unknown_benchmark_rejected_with_helpful_message(self):
        with pytest.raises(BenchmarkError) as excinfo:
            get_benchmark("D99_nothing")
        assert "D26_media" in str(excinfo.value)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_instantiates(self, name):
        traffic = get_benchmark(name)
        assert traffic.flow_count > 0
        assert traffic.core_count >= 26
