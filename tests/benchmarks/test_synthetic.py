"""Tests for the generic traffic generators (repro.benchmarks.synthetic)."""

import pytest

from repro.benchmarks.synthetic import (
    hotspot_traffic,
    neighbour_traffic,
    pipeline_traffic,
    uniform_random_traffic,
)
from repro.errors import BenchmarkError


class TestUniformRandom:
    def test_flow_count(self):
        traffic = uniform_random_traffic(10, flows_per_core=3)
        assert traffic.flow_count == 30

    def test_no_self_flows(self):
        traffic = uniform_random_traffic(8, flows_per_core=4, seed=5)
        assert all(f.src != f.dst for f in traffic.flows)

    def test_bandwidth_range(self):
        traffic = uniform_random_traffic(6, min_bandwidth=10, max_bandwidth=20, seed=2)
        assert all(10 <= f.bandwidth <= 20 for f in traffic.flows)

    def test_deterministic_for_seed(self):
        a = uniform_random_traffic(10, seed=7)
        b = uniform_random_traffic(10, seed=7)
        assert [(f.src, f.dst, f.bandwidth) for f in a.flows] == [
            (f.src, f.dst, f.bandwidth) for f in b.flows
        ]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(BenchmarkError):
            uniform_random_traffic(1)
        with pytest.raises(BenchmarkError):
            uniform_random_traffic(5, flows_per_core=5)


class TestHotspot:
    def test_hotspots_receive_from_everyone(self):
        traffic = hotspot_traffic(10, n_hotspots=1)
        assert traffic.in_degree("core0") == 9

    def test_replies_exist(self):
        traffic = hotspot_traffic(6, n_hotspots=1)
        assert traffic.out_degree("core0") >= 5

    def test_invalid_hotspot_count_rejected(self):
        with pytest.raises(BenchmarkError):
            hotspot_traffic(4, n_hotspots=4)
        with pytest.raises(BenchmarkError):
            hotspot_traffic(2)


class TestNeighbour:
    def test_ring_of_flows(self):
        traffic = neighbour_traffic(8)
        assert traffic.flow_count == 8
        assert traffic.bandwidth_between("core0", "core1") > 0

    def test_custom_hop_distance(self):
        traffic = neighbour_traffic(8, hops=3)
        assert traffic.bandwidth_between("core0", "core3") > 0

    def test_wraparound(self):
        traffic = neighbour_traffic(5, hops=2)
        assert traffic.bandwidth_between("core4", "core1") > 0

    def test_invalid_hops_rejected(self):
        with pytest.raises(BenchmarkError):
            neighbour_traffic(6, hops=6)


class TestPipeline:
    def test_linear_pipeline(self):
        traffic = pipeline_traffic(["a", "b", "c"])
        assert traffic.flow_count == 2
        assert traffic.bandwidth_between("a", "b") > 0

    def test_feedback_flows(self):
        traffic = pipeline_traffic(["a", "b", "c"], backward_fraction=0.5)
        assert traffic.flow_count == 4
        assert traffic.bandwidth_between("b", "a") == pytest.approx(100.0)

    def test_too_short_pipeline_rejected(self):
        with pytest.raises(BenchmarkError):
            pipeline_traffic(["only"])
