"""Tests for the grid floorplanner (repro.synthesis.floorplan)."""

import pytest

from repro.synthesis.floorplan import (
    DEFAULT_TILE_MM,
    assign_link_lengths,
    grid_dimensions,
    place_switches,
    total_wirelength,
)


class TestGridDimensions:
    def test_perfect_square(self):
        assert grid_dimensions(9) == (3, 3)

    def test_non_square(self):
        rows, cols = grid_dimensions(10)
        assert rows * cols >= 10
        assert cols == 4

    def test_single_switch(self):
        assert grid_dimensions(1) == (1, 1)


class TestPlacement:
    def test_all_switches_placed(self, d26_design_14sw):
        positions = place_switches(d26_design_14sw)
        assert set(positions) == set(d26_design_14sw.topology.switches)

    def test_positions_are_distinct(self, d26_design_14sw):
        positions = place_switches(d26_design_14sw)
        assert len(set(positions.values())) == len(positions)

    def test_positions_on_tile_grid(self, d26_design_14sw):
        positions = place_switches(d26_design_14sw, tile_mm=2.0)
        for x, y in positions.values():
            assert x % 2.0 == 0
            assert y % 2.0 == 0

    def test_placement_deterministic(self, d26_design_14sw):
        assert place_switches(d26_design_14sw) == place_switches(d26_design_14sw)

    def test_placement_improves_over_initial_order(self, d36_8_design_14sw):
        """The swap pass must never make the weighted wirelength worse."""
        from repro.synthesis.floorplan import _initial_positions, _wirelength

        design = d36_8_design_14sw
        demands = {}
        for link, load in design.link_load().items():
            demands[(link.src, link.dst)] = demands.get((link.src, link.dst), 0.0) + max(
                load, 1.0
            )
        initial = _initial_positions(design.topology.switches, DEFAULT_TILE_MM)
        optimised = place_switches(design)
        assert _wirelength(optimised, demands) <= _wirelength(initial, demands) + 1e-9


class TestLinkLengths:
    def test_lengths_written_to_topology(self, d26_design_14sw):
        design = d26_design_14sw.copy()
        assign_link_lengths(design)
        for link in design.topology.links:
            assert design.topology.link_length(link) >= 0.5

    def test_lengths_follow_manhattan_distance(self, simple_line_design):
        design = simple_line_design.copy()
        positions = {"A": (0.0, 0.0), "B": (2.0, 0.0), "C": (2.0, 4.0)}
        assign_link_lengths(design, positions=positions)
        from repro.model.channels import Link

        assert design.topology.link_length(Link("A", "B")) == 2.0
        assert design.topology.link_length(Link("B", "C")) == 4.0

    def test_minimum_length_enforced(self, simple_line_design):
        design = simple_line_design.copy()
        positions = {"A": (0.0, 0.0), "B": (0.0, 0.0), "C": (0.0, 0.0)}
        assign_link_lengths(design, positions=positions, minimum_mm=0.75)
        for link in design.topology.links:
            assert design.topology.link_length(link) == 0.75

    def test_total_wirelength_positive(self, d26_design_14sw):
        assert total_wirelength(d26_design_14sw) > 0
