"""Tests for regular topologies (repro.synthesis.regular)."""

import pytest

from repro.core.cdg import build_cdg
from repro.errors import SynthesisError
from repro.model.validation import validate_design
from repro.synthesis.regular import (
    attach_cores_round_robin,
    mesh_design,
    mesh_topology,
    ring_design,
    ring_topology,
    torus_topology,
)


class TestRingTopology:
    def test_unidirectional_ring_link_count(self):
        topo = ring_topology(5)
        assert topo.switch_count == 5
        assert topo.link_count == 5

    def test_bidirectional_ring_link_count(self):
        topo = ring_topology(5, bidirectional=True)
        assert topo.link_count == 10

    def test_too_small_ring_rejected(self):
        with pytest.raises(SynthesisError):
            ring_topology(2)

    def test_ring_is_connected(self):
        assert ring_topology(6).is_connected()


class TestMeshAndTorus:
    def test_mesh_dimensions(self):
        topo = mesh_topology(3, 4)
        assert topo.switch_count == 12
        # internal bidirectional links: horizontal 3*(4-1) + vertical 4*(3-1)
        assert topo.link_count == 2 * (3 * 3 + 4 * 2)

    def test_mesh_bad_dimensions_rejected(self):
        with pytest.raises(SynthesisError):
            mesh_topology(0, 3)

    def test_torus_has_wraparound_links(self):
        mesh = mesh_topology(3, 3)
        torus = torus_topology(3, 3)
        assert torus.link_count == mesh.link_count + 2 * (3 + 3)

    def test_torus_too_small_rejected(self):
        with pytest.raises(SynthesisError):
            torus_topology(2, 4)


class TestRingDesign:
    def test_default_traffic_created(self):
        design = ring_design(6)
        assert design.traffic.core_count == 6
        assert design.traffic.flow_count == 6
        validate_design(design)

    def test_unidirectional_ring_design_has_cyclic_cdg(self):
        assert not build_cdg(ring_design(6)).is_acyclic()

    def test_bidirectional_ring_design(self):
        design = ring_design(6, bidirectional=True)
        validate_design(design)

    def test_custom_traffic_attached_round_robin(self, d26_traffic):
        design = ring_design(6, traffic=d26_traffic, bidirectional=True)
        assert set(design.core_map) == set(d26_traffic.cores)
        validate_design(design)


class TestMeshDesign:
    def test_default_mesh_design_valid(self):
        design = mesh_design(3, 3)
        validate_design(design)
        assert design.traffic.core_count == 9

    def test_xy_routing_acyclic(self):
        assert build_cdg(mesh_design(3, 3)).is_acyclic()

    def test_shortest_path_routing_variant(self):
        design = mesh_design(3, 3, routing="shortest")
        validate_design(design)

    def test_custom_traffic_on_mesh(self, d26_traffic):
        design = mesh_design(3, 3, traffic=d26_traffic)
        validate_design(design)


class TestAttachRoundRobin:
    def test_all_cores_attached(self, d26_traffic):
        topo = mesh_topology(3, 3)
        core_map = attach_cores_round_robin(topo, d26_traffic)
        assert set(core_map) == set(d26_traffic.cores)
        assert set(core_map.values()) <= set(topo.switches)

    def test_distribution_is_balanced(self, d26_traffic):
        topo = mesh_topology(3, 3)
        core_map = attach_cores_round_robin(topo, d26_traffic)
        counts = {}
        for switch in core_map.values():
            counts[switch] = counts.get(switch, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1


class TestDeprecationShims:
    """ring_design/mesh_design survive as warning shims over family_design."""

    def test_ring_design_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="ring_design"):
            design = ring_design(6)
        assert design.topology.switch_count == 6

    def test_mesh_design_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="mesh_design"):
            design = mesh_design(3, 3)
        assert design.topology.switch_count == 9

    def test_topology_helpers_stay_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ring_topology(4)
            mesh_topology(2, 2)
            torus_topology(3, 3)

    def test_shim_matches_family_design(self, d26_traffic):
        from repro.synthesis.families import family_design

        with pytest.warns(DeprecationWarning):
            shimmed = mesh_design(3, 3, traffic=d26_traffic)
        direct = family_design(
            "mesh",
            d26_traffic,
            {"rows": 3, "cols": 3, "routing": "xy"},
            name="mesh3x3",
        )
        assert shimmed.core_map == direct.core_map
        assert {f: r.channels for f, r in shimmed.routes.items()} == {
            f: r.channels for f, r in direct.routes.items()
        }
