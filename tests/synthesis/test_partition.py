"""Tests for core-to-switch partitioning (repro.synthesis.partition)."""

import pytest

from repro.benchmarks.synthetic import neighbour_traffic, pipeline_traffic
from repro.errors import SynthesisError
from repro.synthesis.partition import (
    cluster_sizes,
    internal_bandwidth_fraction,
    partition_cores,
)


class TestPartitionBasics:
    def test_every_core_is_mapped(self, d26_traffic):
        core_map = partition_cores(d26_traffic, 8)
        assert set(core_map) == set(d26_traffic.cores)

    def test_switch_count_respected(self, d26_traffic):
        core_map = partition_cores(d26_traffic, 8)
        assert len(set(core_map.values())) == 8

    def test_switch_names_use_prefix(self, d26_traffic):
        core_map = partition_cores(d26_traffic, 4, switch_prefix="router")
        assert all(switch.startswith("router") for switch in core_map.values())

    def test_one_switch_puts_everything_together(self, d26_traffic):
        core_map = partition_cores(d26_traffic, 1)
        assert set(core_map.values()) == {"sw0"}

    def test_one_core_per_switch_at_maximum(self, d26_traffic):
        core_map = partition_cores(d26_traffic, d26_traffic.core_count)
        sizes = cluster_sizes(core_map)
        assert all(size == 1 for size in sizes.values())

    def test_deterministic(self, d26_traffic):
        assert partition_cores(d26_traffic, 8) == partition_cores(d26_traffic, 8)


class TestBalance:
    def test_cluster_sizes_respect_slack(self, d36_8_traffic):
        core_map = partition_cores(d36_8_traffic, 9, balance_slack=1)
        sizes = cluster_sizes(core_map)
        # ceil(36 / 9) + 1 = 5
        assert max(sizes.values()) <= 5

    def test_zero_slack_gives_tight_balance(self, d26_traffic):
        core_map = partition_cores(d26_traffic, 13, balance_slack=0)
        sizes = cluster_sizes(core_map)
        assert max(sizes.values()) <= 2


class TestQuality:
    def test_communicating_cores_end_up_together(self):
        # Two independent pipelines: each should collapse into one switch.
        traffic = pipeline_traffic(["a0", "a1", "a2"], bandwidth=500.0)
        traffic.add_cores(["b0", "b1", "b2"])
        traffic.add_flow("pb0", "b0", "b1", 500.0)
        traffic.add_flow("pb1", "b1", "b2", 500.0)
        core_map = partition_cores(traffic, 2)
        assert core_map["a0"] == core_map["a1"] == core_map["a2"]
        assert core_map["b0"] == core_map["b1"] == core_map["b2"]
        assert core_map["a0"] != core_map["b0"]

    def test_internal_fraction_improves_with_fewer_switches(self, d26_traffic):
        few = internal_bandwidth_fraction(d26_traffic, partition_cores(d26_traffic, 4))
        many = internal_bandwidth_fraction(d26_traffic, partition_cores(d26_traffic, 20))
        assert few >= many

    def test_internal_fraction_bounds(self, d26_traffic):
        fraction = internal_bandwidth_fraction(d26_traffic, partition_cores(d26_traffic, 8))
        assert 0.0 <= fraction <= 1.0

    def test_neighbour_traffic_partition(self):
        traffic = neighbour_traffic(12)
        core_map = partition_cores(traffic, 4)
        assert len(set(core_map.values())) == 4


class TestErrors:
    def test_too_many_switches_rejected(self, d26_traffic):
        with pytest.raises(SynthesisError):
            partition_cores(d26_traffic, d26_traffic.core_count + 1)

    def test_zero_switches_rejected(self, d26_traffic):
        with pytest.raises(SynthesisError):
            partition_cores(d26_traffic, 0)
