"""Tests for the topology-family layer (repro.synthesis.families)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.registry import topology_families
from repro.benchmarks.synthetic import uniform_random_traffic
from repro.core.cdg import build_cdg
from repro.core.removal import remove_deadlocks
from repro.errors import RegistryError, SynthesisError
from repro.model.validation import validate_design
from repro.routing.shortest_path import compute_routes
from repro.synthesis.builder import (
    SynthesisConfig,
    synthesize_design,
    synthesize_for_switch_count,
)
from repro.synthesis.families import (
    build_family_design,
    family_design,
    family_size,
)

#: Every built-in family, by registry name.
FAMILY_NAMES = ["ring", "mesh", "torus", "fat_tree", "clos", "vl2", "dragonfly"]

#: One small parameter point per family, used by the e2e checks.
SMALL_POINTS = {
    "ring": {"n_switches": 4},
    "mesh": {"rows": 3, "cols": 3},
    "torus": {"rows": 3, "cols": 3},
    "fat_tree": {"k": 2},
    "clos": {"spines": 2, "leaves": 4},
    "vl2": {"spines": 2, "leaves": 4},
    "dragonfly": {"groups": 3, "routers": 2},
}

#: Families whose links must all be bidirectional (the ring is the lone
#: family with a unidirectional variant).
SYMMETRIC_FAMILIES = ["mesh", "torus", "fat_tree", "clos", "vl2", "dragonfly"]

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def family_points(draw):
    """Random (family, params) pairs over small sizes of every family."""
    family = draw(st.sampled_from(FAMILY_NAMES))
    if family == "ring":
        params = {
            "n_switches": draw(st.integers(min_value=3, max_value=12)),
            "bidirectional": draw(st.booleans()),
        }
    elif family in ("mesh", "torus"):
        low = 3 if family == "torus" else 1
        params = {
            "rows": draw(st.integers(min_value=low, max_value=5)),
            "cols": draw(st.integers(min_value=low, max_value=5)),
        }
        if family == "mesh" and params["rows"] * params["cols"] < 2:
            params["cols"] = 2
    elif family == "fat_tree":
        params = {"k": draw(st.sampled_from([2, 4, 6]))}
    elif family in ("clos", "vl2"):
        params = {
            "spines": draw(st.integers(min_value=1, max_value=4)),
            "leaves": draw(st.integers(min_value=2, max_value=6)),
        }
    else:  # dragonfly
        params = {
            "groups": draw(st.integers(min_value=2, max_value=4)),
            "routers": draw(st.integers(min_value=2, max_value=4)),
            "hosts": draw(st.integers(min_value=2, max_value=4)),
        }
    return family, params


def _closed_form(family: str, params: dict) -> int:
    if family == "ring":
        return params["n_switches"]
    if family in ("mesh", "torus"):
        return params["rows"] * params["cols"]
    if family == "fat_tree":
        return 5 * params["k"] ** 2 // 4
    if family in ("clos", "vl2"):
        return params["spines"] + params["leaves"]
    return params["groups"] * params["routers"]


class TestFamilyRegistry:
    def test_builtin_families_registered(self):
        assert topology_families.names() == sorted(FAMILY_NAMES)

    def test_unknown_family_raises(self):
        with pytest.raises(RegistryError, match="unknown topology family"):
            topology_families.get("hypercube")


class TestFamilyGeneratorProperties:
    @SETTINGS
    @given(point=family_points())
    def test_size_closed_form_holds(self, point):
        family, params = point
        instance = topology_families.get(family).build(params)
        assert family_size(family, params) == _closed_form(family, params)
        assert instance.topology.switch_count == _closed_form(family, params)

    @SETTINGS
    @given(point=family_points())
    def test_links_symmetric_where_required(self, point):
        family, params = point
        topology = topology_families.get(family).build(params).topology
        links = {(link.src, link.dst) for link in topology.links}
        if family in SYMMETRIC_FAMILIES or params.get("bidirectional"):
            assert all((dst, src) in links for src, dst in links)
        assert topology.is_connected()

    @SETTINGS
    @given(point=family_points(), seed=st.integers(min_value=0, max_value=20))
    def test_designs_validate_and_route_with_cross_check(self, point, seed):
        family, params = point
        size = family_size(family, params)
        traffic = uniform_random_traffic(2 * size, flows_per_core=2, seed=seed)
        design = family_design(family, traffic, params)
        validate_design(design)
        # Exercise the indexed router (against its legacy cross-check twin)
        # on the family's adjacency — multi-tree, torus and global-link
        # structures alike.
        compute_routes(design, weight_mode="hops", cross_check=True)
        validate_design(design)

    def test_attachment_is_deterministic(self, d26_traffic):
        one = family_design("fat_tree", d26_traffic, {"k": 4})
        two = family_design("fat_tree", d26_traffic, {"k": 4})
        assert one.core_map == two.core_map
        assert [link.name for link in one.topology.links] == [
            link.name for link in two.topology.links
        ]


class TestFamilyErrors:
    def test_odd_fat_tree_arity_rejected(self):
        with pytest.raises(SynthesisError, match=r"fat_tree.*k=5.*must be even"):
            family_size("fat_tree", {"k": 5})

    def test_unknown_parameter_named(self):
        with pytest.raises(SynthesisError, match=r"torus.*unknown parameter"):
            family_size("torus", {"rows": 3, "cols": 3, "depth": 2})

    def test_switch_count_mismatch_names_family(self, d26_traffic):
        with pytest.raises(SynthesisError, match=r"fat_tree.*k=4.*20 switches"):
            build_family_design(
                d26_traffic, family="fat_tree", params={"k": 4}, n_switches=14
            )

    def test_unknown_override_in_switch_count_synthesis(self, d26_traffic):
        with pytest.raises(SynthesisError, match="unknown synthesis override"):
            synthesize_for_switch_count(d26_traffic, 14, bogus_knob=3)

    def test_family_mismatch_through_switch_count_synthesis(self, d26_traffic):
        with pytest.raises(SynthesisError, match="fat_tree"):
            synthesize_for_switch_count(
                d26_traffic, 14, topology_family="fat_tree", family_params={"k": 4}
            )

    def test_dragonfly_host_capacity_enforced(self):
        traffic = uniform_random_traffic(40, flows_per_core=1, seed=0)
        with pytest.raises(SynthesisError, match=r"dragonfly.*cores"):
            family_design(
                "dragonfly", traffic, {"groups": 2, "routers": 2, "hosts": 1}
            )

    def test_bad_routing_mode_rejected(self):
        with pytest.raises(SynthesisError, match="routing"):
            family_size("clos", {"spines": 2, "leaves": 4, "routing": "warp"})


class TestBuilderDispatch:
    def test_config_with_family_routes_through_generator(self, d26_traffic):
        config = SynthesisConfig(
            n_switches=9, topology_family="torus", family_params={"rows": 3, "cols": 3}
        )
        design = synthesize_design(d26_traffic, config)
        assert design.topology.switch_count == 9
        validate_design(design)

    def test_family_backend_requires_family(self, d26_traffic):
        from repro.api.registry import synthesis_backends

        backend = synthesis_backends.get("family")
        with pytest.raises(SynthesisError, match="topology_family"):
            backend(d26_traffic, SynthesisConfig(n_switches=9))

    def test_unknown_family_in_config_lists_available(self):
        with pytest.raises(SynthesisError, match="hypercube"):
            SynthesisConfig(n_switches=9, topology_family="hypercube")


class TestFamilyEndToEnd:
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_small_instance_synthesize_remove_simulate(self, family):
        from repro.analysis.performance import measure_load_point

        params = SMALL_POINTS[family]
        size = family_size(family, params)
        traffic = uniform_random_traffic(2 * size, flows_per_core=2, seed=1)
        design = family_design(family, traffic, params)
        removal = remove_deadlocks(design)
        assert build_cdg(removal.design).is_acyclic()
        for scenario in ("flows", "trace"):
            # cross_check=True runs compiled and interpreted engines and
            # raises on any statistics divergence.
            metrics = measure_load_point(
                removal.design,
                injection_scale=0.5,
                max_cycles=300,
                seed=1,
                traffic_scenario=scenario,
                scenario_params={"trace_cycles": 300} if scenario == "trace" else None,
                cross_check=True,
            )
            assert metrics["packets_delivered"] >= 0

    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_removal_engines_agree_on_family_designs(self, family):
        traffic = uniform_random_traffic(
            2 * family_size(family, SMALL_POINTS[family]), flows_per_core=2, seed=2
        )
        design = family_design(family, traffic, SMALL_POINTS[family])
        results = [
            remove_deadlocks(design, engine=engine)
            for engine in ("context", "rebuild")
        ]
        def signature(result):
            return [
                (a.iteration, a.direction, a.cost, sorted(a.flows_rerouted))
                for a in result.actions
            ]

        reference = signature(results[0])
        for result in results[1:]:
            assert signature(result) == reference
            assert result.added_vc_count == results[0].added_vc_count

    def test_fat_tree_k8_end_to_end(self):
        """The acceptance-criteria point: k=8 (80 switches) full stack."""
        from repro.analysis.performance import measure_load_point

        assert family_size("fat_tree", {"k": 8}) == 80
        traffic = uniform_random_traffic(160, flows_per_core=2, seed=0)
        design = family_design("fat_tree", traffic, {"k": 8})
        validate_design(design)
        removal = remove_deadlocks(design)
        assert build_cdg(removal.design).is_acyclic()
        metrics = measure_load_point(
            removal.design,
            injection_scale=0.5,
            max_cycles=300,
            seed=0,
            sim_engine="compiled",
        )
        assert metrics["packets_delivered"] > 0
