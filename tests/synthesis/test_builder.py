"""Tests for application-specific topology synthesis (repro.synthesis.builder)."""

import pytest

from repro.core.cdg import build_cdg
from repro.errors import SynthesisError
from repro.model.validation import validate_design
from repro.synthesis.builder import (
    SynthesisConfig,
    build_switch_network,
    synthesize_design,
    synthesize_for_switch_count,
)
from repro.synthesis.partition import partition_cores


class TestConfig:
    def test_defaults_are_valid(self):
        config = SynthesisConfig(n_switches=8)
        assert config.extra_link_fraction > 0

    def test_bad_switch_count_rejected(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(n_switches=0)

    def test_negative_extra_links_rejected(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(n_switches=4, extra_link_fraction=-1)

    def test_small_degree_rejected(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(n_switches=4, max_switch_degree=1)

    def test_unknown_routing_rejected(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(n_switches=4, routing="magic")


class TestSwitchNetwork:
    def test_backbone_is_connected(self, d26_traffic):
        config = SynthesisConfig(n_switches=10, extra_link_fraction=0.0)
        core_map = partition_cores(d26_traffic, 10)
        topology = build_switch_network(d26_traffic, core_map, config)
        assert topology.switch_count == 10
        assert topology.is_connected()

    def test_pure_backbone_is_a_tree(self, d26_traffic):
        config = SynthesisConfig(n_switches=10, extra_link_fraction=0.0)
        core_map = partition_cores(d26_traffic, 10)
        topology = build_switch_network(d26_traffic, core_map, config)
        # A bidirectional spanning tree over 10 switches has 9 * 2 links.
        assert topology.link_count == 18

    def test_extra_links_respect_budget(self, d26_traffic):
        core_map = partition_cores(d26_traffic, 10)
        sparse = build_switch_network(
            d26_traffic, core_map, SynthesisConfig(n_switches=10, extra_link_fraction=0.0)
        )
        dense = build_switch_network(
            d26_traffic, core_map, SynthesisConfig(n_switches=10, extra_link_fraction=1.0)
        )
        budget = 10  # extra_link_fraction * n_switches
        assert sparse.link_count <= dense.link_count <= sparse.link_count + 2 * budget

    def test_degree_budget_respected_for_extra_links(self, d36_8_traffic):
        config = SynthesisConfig(n_switches=12, extra_link_fraction=2.0, max_switch_degree=3)
        core_map = partition_cores(d36_8_traffic, 12)
        backbone = build_switch_network(
            d36_8_traffic, core_map, SynthesisConfig(n_switches=12, extra_link_fraction=0.0)
        )
        topology = build_switch_network(d36_8_traffic, core_map, config)

        def undirected_degree(topo, switch):
            neighbors = set(topo.neighbors(switch))
            neighbors.update(link.src for link in topo.in_links(switch))
            return len(neighbors)

        for switch in topology.switches:
            base = undirected_degree(backbone, switch)
            assert undirected_degree(topology, switch) <= max(base, config.max_switch_degree)


class TestSynthesizeDesign:
    def test_design_is_valid(self, d26_traffic):
        design = synthesize_design(d26_traffic, SynthesisConfig(n_switches=8))
        validate_design(design)

    def test_every_inter_switch_flow_routed(self, d26_traffic):
        design = synthesize_design(d26_traffic, SynthesisConfig(n_switches=8))
        for flow in design.traffic.flows:
            src, dst = design.flow_endpoints_switches(flow)
            assert design.routes.has_route(flow.name) == (src != dst)

    def test_link_lengths_assigned(self, d26_traffic):
        design = synthesize_design(d26_traffic, SynthesisConfig(n_switches=8))
        assert all(
            design.topology.link_length(link) > 0 for link in design.topology.links
        )

    def test_deterministic(self, d26_traffic):
        first = synthesize_design(d26_traffic, SynthesisConfig(n_switches=8))
        second = synthesize_design(d26_traffic, SynthesisConfig(n_switches=8))
        assert first.topology == second.topology
        assert first.routes == second.routes

    def test_updown_routing_gives_acyclic_cdg(self, d36_8_traffic):
        design = synthesize_design(
            d36_8_traffic, SynthesisConfig(n_switches=14, routing="updown")
        )
        assert build_cdg(design).is_acyclic()

    def test_dense_traffic_with_shortcuts_creates_cycles(self, d36_8_traffic):
        """The situation the paper targets: custom topology + shortest-path
        routing yields a cyclic CDG for sufficiently rich traffic."""
        design = synthesize_design(d36_8_traffic, SynthesisConfig(n_switches=14))
        assert not build_cdg(design).is_acyclic()

    def test_switch_count_helper(self, d26_traffic):
        design = synthesize_for_switch_count(d26_traffic, 6)
        assert design.topology.switch_count == 6

    def test_custom_name(self, d26_traffic):
        design = synthesize_design(
            d26_traffic, SynthesisConfig(n_switches=6), name="custom"
        )
        assert design.name == "custom"

    def test_traffic_is_copied(self, d26_traffic):
        design = synthesize_design(d26_traffic, SynthesisConfig(n_switches=6))
        design.traffic.add_core("extra_core")
        assert not d26_traffic.has_core("extra_core")
