"""Tests for the topology graph (repro.model.topology)."""

import pytest

from repro.errors import TopologyError
from repro.model.channels import Channel, Link
from repro.model.topology import Topology


@pytest.fixture
def triangle() -> Topology:
    topo = Topology("triangle")
    topo.add_switches(["A", "B", "C"])
    topo.add_link("A", "B")
    topo.add_link("B", "C")
    topo.add_link("C", "A")
    return topo


class TestSwitches:
    def test_add_and_query(self, triangle):
        assert triangle.switch_count == 3
        assert triangle.has_switch("A")
        assert not triangle.has_switch("Z")

    def test_duplicate_switch_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_switch("A")

    def test_empty_switch_name_rejected(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_switch("")

    def test_iteration_and_contains(self, triangle):
        assert list(triangle) == ["A", "B", "C"]
        assert "B" in triangle

    def test_switches_property_is_a_copy(self, triangle):
        switches = triangle.switches
        switches.append("Z")
        assert triangle.switch_count == 3


class TestLinks:
    def test_add_link_returns_link(self, triangle):
        link = triangle.find_link("A", "B")
        assert link == Link("A", "B")

    def test_link_count(self, triangle):
        assert triangle.link_count == 3

    def test_duplicate_link_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_link("A", "B")

    def test_parallel_links_allowed_with_distinct_index(self, triangle):
        triangle.add_link("A", "B", index=1)
        assert triangle.link_count == 4

    def test_unknown_switch_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_link("A", "Z")

    def test_bidirectional_link_adds_two(self):
        topo = Topology()
        topo.add_switches(["A", "B"])
        forward, backward = topo.add_bidirectional_link("A", "B")
        assert forward == Link("A", "B")
        assert backward == Link("B", "A")
        assert topo.link_count == 2

    def test_remove_link(self, triangle):
        triangle.remove_link(Link("A", "B"))
        assert triangle.link_count == 2
        with pytest.raises(TopologyError):
            triangle.remove_link(Link("A", "B"))

    def test_out_and_in_links(self, triangle):
        assert triangle.out_links("A") == [Link("A", "B")]
        assert triangle.in_links("A") == [Link("C", "A")]

    def test_neighbors_and_degree(self, triangle):
        assert triangle.neighbors("A") == ["B"]
        assert triangle.degree("A") == 2

    def test_link_length_default_and_set(self, triangle):
        link = Link("A", "B")
        assert triangle.link_length(link) == 1.0
        triangle.set_link_length(link, 3.5)
        assert triangle.link_length(link) == 3.5

    def test_link_length_rejects_nonpositive(self, triangle):
        with pytest.raises(TopologyError):
            triangle.set_link_length(Link("A", "B"), 0.0)

    def test_link_length_rejects_unknown_link(self, triangle):
        with pytest.raises(TopologyError):
            triangle.set_link_length(Link("A", "C"), 1.0)


class TestVirtualChannels:
    def test_initial_vc_count_is_one(self, triangle):
        assert triangle.vc_count(Link("A", "B")) == 1

    def test_add_virtual_channel_returns_next_index(self, triangle):
        link = Link("A", "B")
        first = triangle.add_virtual_channel(link)
        second = triangle.add_virtual_channel(link)
        assert (first.vc, second.vc) == (1, 2)
        assert triangle.vc_count(link) == 3

    def test_add_vc_on_unknown_link_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_virtual_channel(Link("A", "C"))

    def test_has_channel(self, triangle):
        link = Link("A", "B")
        assert triangle.has_channel(Channel(link, 0))
        assert not triangle.has_channel(Channel(link, 1))
        triangle.add_virtual_channel(link)
        assert triangle.has_channel(Channel(link, 1))

    def test_channels_enumeration(self, triangle):
        triangle.add_virtual_channel(Link("A", "B"))
        channels = triangle.channels()
        assert Channel(Link("A", "B"), 1) in channels
        assert len(channels) == triangle.channel_count == 4

    def test_extra_vc_count(self, triangle):
        assert triangle.extra_vc_count == 0
        triangle.add_virtual_channel(Link("A", "B"))
        triangle.add_virtual_channel(Link("B", "C"))
        assert triangle.extra_vc_count == 2

    def test_vc_count_rejects_unknown_link(self, triangle):
        with pytest.raises(TopologyError):
            triangle.vc_count(Link("A", "C"))


class TestGraphQueries:
    def test_connected(self, triangle):
        assert triangle.is_connected()

    def test_disconnected(self):
        topo = Topology()
        topo.add_switches(["A", "B", "C"])
        topo.add_link("A", "B")
        assert not topo.is_connected()

    def test_empty_topology_is_connected(self):
        assert Topology().is_connected()

    def test_unknown_switch_queries_raise(self, triangle):
        with pytest.raises(TopologyError):
            triangle.out_links("Z")
        with pytest.raises(TopologyError):
            triangle.in_links("Z")


class TestCopyAndEquality:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_virtual_channel(Link("A", "B"))
        assert triangle.vc_count(Link("A", "B")) == 1
        assert clone.vc_count(Link("A", "B")) == 2

    def test_equality_considers_links_and_vcs(self, triangle):
        clone = triangle.copy()
        assert clone == triangle
        clone.add_virtual_channel(Link("A", "B"))
        assert clone != triangle

    def test_equality_with_other_type(self, triangle):
        assert triangle != 42
