"""Tests for the complete design object (repro.model.design)."""

import pytest

from repro.errors import DesignError
from repro.model.channels import Channel, Link


class TestCoreMapping:
    def test_switch_of(self, ring_design_fixture):
        assert ring_design_fixture.switch_of("core_F1_src") == "SW1"

    def test_unattached_core_raises(self, simple_line_design):
        del simple_line_design.core_map["c0"]
        with pytest.raises(DesignError):
            simple_line_design.switch_of("c0")

    def test_attach_core(self, simple_line_design):
        simple_line_design.attach_core("c0", "B")
        assert simple_line_design.switch_of("c0") == "B"

    def test_attach_unknown_core_rejected(self, simple_line_design):
        with pytest.raises(DesignError):
            simple_line_design.attach_core("zzz", "B")

    def test_attach_to_unknown_switch_rejected(self, simple_line_design):
        with pytest.raises(DesignError):
            simple_line_design.attach_core("c0", "ZZ")

    def test_cores_on(self, simple_line_design):
        assert simple_line_design.cores_on("A") == ["c0"]
        assert simple_line_design.cores_on("B") == ["c1"]


class TestAccessors:
    def test_flows_property(self, simple_line_design):
        assert [f.name for f in simple_line_design.flows] == ["f0", "f1"]

    def test_route_of(self, simple_line_design):
        assert simple_line_design.route_of("f0").hop_count == 2

    def test_flow_endpoints_switches(self, simple_line_design):
        flow = simple_line_design.traffic.flow("f0")
        assert simple_line_design.flow_endpoints_switches(flow) == ("A", "C")

    def test_extra_vc_count_initially_zero(self, simple_line_design):
        assert simple_line_design.extra_vc_count == 0

    def test_channel_count(self, simple_line_design):
        assert simple_line_design.channel_count == 4


class TestLoads:
    def test_channel_load_accumulates_flow_bandwidth(self, simple_line_design):
        load = simple_line_design.channel_load()
        assert load[Channel(Link("A", "B"))] == 100.0
        assert load[Channel(Link("C", "B"))] == 50.0

    def test_unused_channels_have_zero_load(self, simple_line_design):
        load = simple_line_design.channel_load()
        assert all(value >= 0 for value in load.values())
        assert len(load) == simple_line_design.channel_count

    def test_link_load_matches_channel_load(self, simple_line_design):
        channel_load = simple_line_design.channel_load()
        link_load = simple_line_design.link_load()
        for link, value in link_load.items():
            expected = sum(v for c, v in channel_load.items() if c.link == link)
            assert value == pytest.approx(expected)


class TestPortCounts:
    def test_port_counts_include_local_cores(self, simple_line_design):
        counts = simple_line_design.switch_port_counts()
        # Switch B has 2 incoming links, 2 outgoing links and 1 local core.
        assert counts["B"]["in_ports"] == 3
        assert counts["B"]["out_ports"] == 3
        assert counts["B"]["vcs"] == 3

    def test_vcs_grow_with_added_virtual_channels(self, simple_line_design):
        before = simple_line_design.switch_port_counts()["B"]["vcs"]
        simple_line_design.topology.add_virtual_channel(Link("A", "B"))
        after = simple_line_design.switch_port_counts()["B"]["vcs"]
        assert after == before + 1


class TestCopy:
    def test_copy_is_deep_for_topology_and_routes(self, simple_line_design):
        clone = simple_line_design.copy()
        clone.topology.add_virtual_channel(Link("A", "B"))
        clone.routes.remove_route("f0")
        assert simple_line_design.topology.vc_count(Link("A", "B")) == 1
        assert simple_line_design.routes.has_route("f0")

    def test_copy_can_rename(self, simple_line_design):
        assert simple_line_design.copy(name="other").name == "other"
