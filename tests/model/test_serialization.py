"""Tests for design JSON serialization (repro.model.serialization)."""

import json

import pytest

from repro.errors import SerializationError
from repro.model.serialization import (
    design_from_dict,
    design_to_dict,
    load_design,
    save_design,
)


class TestRoundTrip:
    def test_paper_ring_round_trip(self, ring_design_fixture):
        data = design_to_dict(ring_design_fixture)
        rebuilt = design_from_dict(data)
        assert rebuilt.name == ring_design_fixture.name
        assert rebuilt.topology == ring_design_fixture.topology
        assert rebuilt.routes == ring_design_fixture.routes
        assert rebuilt.core_map == ring_design_fixture.core_map

    def test_round_trip_preserves_extra_vcs(self, ring_design_fixture):
        from repro.core.removal import remove_deadlocks

        result = remove_deadlocks(ring_design_fixture)
        rebuilt = design_from_dict(design_to_dict(result.design))
        assert rebuilt.extra_vc_count == result.added_vc_count
        assert rebuilt.routes == result.design.routes

    def test_round_trip_preserves_flow_attributes(self, simple_line_design):
        rebuilt = design_from_dict(design_to_dict(simple_line_design))
        flow = rebuilt.traffic.flow("f0")
        assert flow.bandwidth == 100.0
        assert flow.packet_size_flits == 8

    def test_round_trip_preserves_link_lengths(self, simple_line_design):
        from repro.model.channels import Link

        simple_line_design.topology.set_link_length(Link("A", "B"), 3.25)
        rebuilt = design_from_dict(design_to_dict(simple_line_design))
        assert rebuilt.topology.link_length(Link("A", "B")) == 3.25

    def test_file_round_trip(self, tmp_path, ring_design_fixture):
        path = save_design(ring_design_fixture, tmp_path / "ring.json")
        assert path.exists()
        rebuilt = load_design(path)
        assert rebuilt.topology == ring_design_fixture.topology

    def test_saved_file_is_valid_json(self, tmp_path, simple_line_design):
        path = save_design(simple_line_design, tmp_path / "line.json")
        data = json.loads(path.read_text())
        assert data["name"] == "line3"
        assert data["format_version"] == 1


class TestErrors:
    def test_unsupported_version_rejected(self, ring_design_fixture):
        data = design_to_dict(ring_design_fixture)
        data["format_version"] = 99
        with pytest.raises(SerializationError):
            design_from_dict(data)

    def test_malformed_document_rejected(self):
        with pytest.raises(SerializationError):
            design_from_dict({"topology": {}})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load_design(tmp_path / "does_not_exist.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_design(path)
