"""Tests for links and channels (repro.model.channels)."""

import pytest

from repro.errors import TopologyError
from repro.model.channels import Channel, Link, channels_are_adjacent


class TestLink:
    def test_name_without_index(self):
        assert Link("SW1", "SW2").name == "SW1->SW2"

    def test_name_with_parallel_index(self):
        assert Link("SW1", "SW2", index=1).name == "SW1->SW2#1"

    def test_reversed_swaps_endpoints(self):
        link = Link("A", "B", index=2)
        assert link.reversed() == Link("B", "A", index=2)

    def test_reversed_twice_is_identity(self):
        link = Link("A", "B")
        assert link.reversed().reversed() == link

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link("A", "A")

    def test_empty_endpoint_rejected(self):
        with pytest.raises(TopologyError):
            Link("", "B")

    def test_negative_index_rejected(self):
        with pytest.raises(TopologyError):
            Link("A", "B", index=-1)

    def test_links_are_hashable_and_comparable(self):
        assert len({Link("A", "B"), Link("A", "B"), Link("B", "A")}) == 2
        assert Link("A", "B") < Link("B", "A")

    def test_str_is_name(self):
        assert str(Link("A", "B")) == "A->B"


class TestChannel:
    def test_default_vc_is_zero(self):
        assert Channel(Link("A", "B")).vc == 0

    def test_name_includes_vc(self):
        assert Channel(Link("A", "B"), 3).name == "A->B.vc3"

    def test_src_dst_delegate_to_link(self):
        channel = Channel(Link("A", "B"))
        assert channel.src == "A"
        assert channel.dst == "B"

    def test_negative_vc_rejected(self):
        with pytest.raises(TopologyError):
            Channel(Link("A", "B"), -1)

    def test_with_vc_keeps_link(self):
        channel = Channel(Link("A", "B"), 0)
        bumped = channel.with_vc(2)
        assert bumped.link == channel.link
        assert bumped.vc == 2

    def test_channels_on_same_link_differ_by_vc(self):
        link = Link("A", "B")
        assert Channel(link, 0) != Channel(link, 1)

    def test_ordering_is_deterministic(self):
        link = Link("A", "B")
        assert sorted([Channel(link, 1), Channel(link, 0)]) == [
            Channel(link, 0),
            Channel(link, 1),
        ]


class TestAdjacency:
    def test_adjacent_channels(self):
        first = Channel(Link("A", "B"))
        second = Channel(Link("B", "C"))
        assert channels_are_adjacent(first, second)

    def test_non_adjacent_channels(self):
        first = Channel(Link("A", "B"))
        second = Channel(Link("C", "D"))
        assert not channels_are_adjacent(first, second)

    def test_adjacency_is_directional(self):
        first = Channel(Link("A", "B"))
        second = Channel(Link("B", "A"))
        assert channels_are_adjacent(first, second)
        assert channels_are_adjacent(second, first)
        third = Channel(Link("C", "A"))
        assert channels_are_adjacent(third, first)
        assert not channels_are_adjacent(first, third)
