"""Tests for routes and route sets (repro.model.routes)."""

import pytest

from repro.errors import RouteError
from repro.model.channels import Channel, Link
from repro.model.routes import Route, RouteSet


def ch(src, dst, vc=0):
    return Channel(Link(src, dst), vc)


@pytest.fixture
def abc_route() -> Route:
    return Route([ch("A", "B"), ch("B", "C"), ch("C", "D")])


class TestRoute:
    def test_empty_route_rejected(self):
        with pytest.raises(RouteError):
            Route([])

    def test_non_contiguous_route_rejected(self):
        with pytest.raises(RouteError):
            Route([ch("A", "B"), ch("C", "D")])

    def test_endpoints(self, abc_route):
        assert abc_route.source_switch == "A"
        assert abc_route.destination_switch == "D"

    def test_hop_count_and_len(self, abc_route):
        assert abc_route.hop_count == 3
        assert len(abc_route) == 3

    def test_switch_sequence(self, abc_route):
        assert abc_route.switches == ["A", "B", "C", "D"]

    def test_links_property(self, abc_route):
        assert abc_route.links == (Link("A", "B"), Link("B", "C"), Link("C", "D"))

    def test_uses_channel_and_link(self, abc_route):
        assert abc_route.uses_channel(ch("B", "C"))
        assert not abc_route.uses_channel(ch("B", "C", vc=1))
        assert abc_route.uses_link(Link("B", "C"))

    def test_index_of(self, abc_route):
        assert abc_route.index_of(ch("B", "C")) == 1
        with pytest.raises(RouteError):
            abc_route.index_of(ch("X", "Y"))

    def test_dependencies_are_consecutive_pairs(self, abc_route):
        deps = abc_route.dependencies()
        assert deps == [(ch("A", "B"), ch("B", "C")), (ch("B", "C"), ch("C", "D"))]

    def test_replace_channels_only_vc_change_allowed(self, abc_route):
        new = abc_route.replace_channels({ch("B", "C"): ch("B", "C", vc=1)})
        assert new[1].vc == 1
        with pytest.raises(RouteError):
            abc_route.replace_channels({ch("B", "C"): ch("B", "X")})

    def test_replace_at_positions(self, abc_route):
        new = abc_route.replace_at_positions({0: ch("A", "B", vc=2)})
        assert new[0].vc == 2
        assert new[1] == abc_route[1]

    def test_replace_at_bad_position(self, abc_route):
        with pytest.raises(RouteError):
            abc_route.replace_at_positions({5: ch("A", "B", vc=1)})

    def test_replace_at_position_wrong_link(self, abc_route):
        with pytest.raises(RouteError):
            abc_route.replace_at_positions({0: ch("A", "X", vc=1)})

    def test_equality_and_hash(self, abc_route):
        same = Route([ch("A", "B"), ch("B", "C"), ch("C", "D")])
        assert same == abc_route
        assert hash(same) == hash(abc_route)

    def test_getitem_and_iteration(self, abc_route):
        assert abc_route[0] == ch("A", "B")
        assert list(abc_route) == list(abc_route.channels)


class TestRouteSet:
    def test_set_and_get(self, abc_route):
        routes = RouteSet()
        routes.set_route("f0", abc_route)
        assert routes.route("f0") == abc_route
        assert routes.has_route("f0")
        assert "f0" in routes

    def test_missing_route_raises(self):
        with pytest.raises(RouteError):
            RouteSet().route("f0")

    def test_remove_route(self, abc_route):
        routes = RouteSet({"f0": abc_route})
        routes.remove_route("f0")
        assert not routes.has_route("f0")
        with pytest.raises(RouteError):
            routes.remove_route("f0")

    def test_empty_flow_name_rejected(self, abc_route):
        with pytest.raises(RouteError):
            RouteSet().set_route("", abc_route)

    def test_channels_and_links_used(self, abc_route):
        routes = RouteSet({"f0": abc_route, "f1": Route([ch("A", "B", vc=1)])})
        assert ch("A", "B", vc=1) in routes.channels_used()
        assert Link("A", "B") in routes.links_used()
        assert len(routes.links_used()) == 3

    def test_flows_using_channel_and_link(self, abc_route):
        routes = RouteSet({"f0": abc_route, "f1": Route([ch("A", "B")])})
        assert routes.flows_using_channel(ch("A", "B")) == ["f0", "f1"]
        assert routes.flows_using_link(Link("C", "D")) == ["f0"]

    def test_hop_count_statistics(self, abc_route):
        routes = RouteSet({"f0": abc_route, "f1": Route([ch("A", "B")])})
        assert routes.max_hop_count() == 3
        assert routes.total_hop_count() == 4
        assert RouteSet().max_hop_count() == 0

    def test_copy_is_independent(self, abc_route):
        routes = RouteSet({"f0": abc_route})
        clone = routes.copy()
        clone.set_route("f1", abc_route)
        assert len(routes) == 1
        assert len(clone) == 2

    def test_items_sorted(self, abc_route):
        routes = RouteSet({"b": abc_route, "a": abc_route})
        assert [name for name, _ in routes.items()] == ["a", "b"]
