"""Tests for the communication graph (repro.model.traffic)."""

import pytest

from repro.errors import TrafficError
from repro.model.traffic import CommunicationGraph, Flow, merge_parallel_flows


@pytest.fixture
def graph() -> CommunicationGraph:
    g = CommunicationGraph("g")
    g.add_cores(["a", "b", "c"])
    g.add_flow("f0", "a", "b", 100.0)
    g.add_flow("f1", "b", "c", 50.0)
    g.add_flow("f2", "a", "c", 25.0)
    return g


class TestFlow:
    def test_valid_flow(self):
        flow = Flow("f", "a", "b", 10.0, 4)
        assert flow.bandwidth == 10.0
        assert flow.packet_size_flits == 4

    def test_self_flow_rejected(self):
        with pytest.raises(TrafficError):
            Flow("f", "a", "a")

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(TrafficError):
            Flow("f", "a", "b", 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(TrafficError):
            Flow("", "a", "b")

    def test_zero_packet_size_rejected(self):
        with pytest.raises(TrafficError):
            Flow("f", "a", "b", 1.0, 0)


class TestCores:
    def test_core_count(self, graph):
        assert graph.core_count == 3

    def test_duplicate_core_rejected(self, graph):
        with pytest.raises(TrafficError):
            graph.add_core("a")

    def test_empty_core_rejected(self, graph):
        with pytest.raises(TrafficError):
            graph.add_core("")


class TestFlows:
    def test_flow_lookup(self, graph):
        assert graph.flow("f0").dst == "b"

    def test_unknown_flow_raises(self, graph):
        with pytest.raises(TrafficError):
            graph.flow("nope")

    def test_duplicate_flow_rejected(self, graph):
        with pytest.raises(TrafficError):
            graph.add_flow("f0", "a", "c")

    def test_flow_with_unknown_core_rejected(self, graph):
        with pytest.raises(TrafficError):
            graph.add_flow("f9", "a", "zzz")

    def test_register_flow_object(self, graph):
        graph.register_flow(Flow("f3", "c", "a", 5.0))
        assert graph.has_flow("f3")

    def test_register_flow_unknown_core_rejected(self, graph):
        with pytest.raises(TrafficError):
            graph.register_flow(Flow("f9", "zzz", "a"))

    def test_flows_sorted_by_name(self, graph):
        assert [f.name for f in graph.flows] == ["f0", "f1", "f2"]

    def test_flows_from_and_to(self, graph):
        assert [f.name for f in graph.flows_from("a")] == ["f0", "f2"]
        assert [f.name for f in graph.flows_to("c")] == ["f1", "f2"]

    def test_flows_between_and_bandwidth(self, graph):
        assert [f.name for f in graph.flows_between("a", "b")] == ["f0"]
        assert graph.bandwidth_between("a", "b") == 100.0
        assert graph.bandwidth_between("b", "a") == 0.0

    def test_total_bandwidth(self, graph):
        assert graph.total_bandwidth == 175.0

    def test_degrees(self, graph):
        assert graph.out_degree("a") == 2
        assert graph.in_degree("c") == 2

    def test_communication_partners(self, graph):
        assert graph.communication_partners("a") == ["b", "c"]

    def test_len_and_iter(self, graph):
        assert len(graph) == 3
        assert [f.name for f in graph] == ["f0", "f1", "f2"]


class TestCopyAndMerge:
    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add_flow("f9", "c", "b", 1.0)
        assert not graph.has_flow("f9")

    def test_merge_parallel_flows_sums_bandwidth(self):
        g = CommunicationGraph("dup")
        g.add_cores(["a", "b"])
        g.add_flow("x", "a", "b", 10.0, packet_size_flits=4)
        g.add_flow("y", "a", "b", 20.0, packet_size_flits=8)
        merged = merge_parallel_flows(g)
        assert merged.flow_count == 1
        flow = merged.flows[0]
        assert flow.bandwidth == 30.0
        assert flow.packet_size_flits == 8

    def test_merge_keeps_distinct_pairs(self, graph):
        merged = merge_parallel_flows(graph)
        assert merged.flow_count == 3
