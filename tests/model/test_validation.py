"""Tests for whole-design validation (repro.model.validation)."""

import pytest

from repro.errors import ValidationError
from repro.model.channels import Channel, Link
from repro.model.routes import Route
from repro.model.validation import (
    collect_problems,
    is_valid,
    validate_core_mapping,
    validate_design,
    validate_routes,
    validate_topology,
)


class TestHealthyDesigns:
    def test_paper_ring_is_valid(self, ring_design_fixture):
        validate_design(ring_design_fixture)
        assert is_valid(ring_design_fixture)

    def test_line_design_is_valid(self, simple_line_design):
        assert collect_problems(simple_line_design) == []

    def test_mesh_design_is_valid(self, small_mesh_design):
        validate_design(small_mesh_design)


class TestTopologyProblems:
    def test_disconnected_topology_reported(self, simple_line_design):
        simple_line_design.topology.add_switch("ISOLATED")
        problems = validate_topology(simple_line_design)
        assert any("not connected" in p for p in problems)

    def test_empty_topology_reported(self, simple_line_design):
        simple_line_design.topology._switches.clear()
        simple_line_design.topology._switch_set.clear()
        problems = validate_topology(simple_line_design)
        assert any("no switches" in p for p in problems)


class TestCoreMappingProblems:
    def test_unmapped_core_reported(self, simple_line_design):
        del simple_line_design.core_map["c1"]
        problems = validate_core_mapping(simple_line_design)
        assert any("c1" in p for p in problems)

    def test_mapping_to_unknown_switch_reported(self, simple_line_design):
        simple_line_design.core_map["c1"] = "NOPE"
        problems = validate_core_mapping(simple_line_design)
        assert any("NOPE" in p for p in problems)

    def test_mapping_of_unknown_core_reported(self, simple_line_design):
        simple_line_design.core_map["ghost"] = "A"
        problems = validate_core_mapping(simple_line_design)
        assert any("ghost" in p for p in problems)


class TestRouteProblems:
    def test_missing_route_reported(self, simple_line_design):
        simple_line_design.routes.remove_route("f0")
        problems = validate_routes(simple_line_design)
        assert any("no route" in p for p in problems)

    def test_missing_route_tolerated_when_not_required(self, simple_line_design):
        simple_line_design.routes.remove_route("f0")
        assert validate_routes(simple_line_design, require_all=False) == []

    def test_same_switch_flow_needs_no_route(self, simple_line_design):
        # move c2 onto switch A so f0/f1 become single-switch flows
        simple_line_design.core_map["c2"] = "A"
        simple_line_design.routes.remove_route("f0")
        simple_line_design.routes.remove_route("f1")
        problems = validate_routes(simple_line_design)
        assert problems == []

    def test_route_with_unknown_vc_reported(self, simple_line_design):
        route = Route([Channel(Link("A", "B"), 5), Channel(Link("B", "C"), 0)])
        simple_line_design.routes.set_route("f0", route)
        problems = validate_routes(simple_line_design)
        assert any("VC 5" in p for p in problems)

    def test_route_with_unknown_link_reported(self, simple_line_design):
        simple_line_design.topology.remove_link(Link("B", "C"))
        problems = validate_routes(simple_line_design)
        assert any("unknown link" in p for p in problems)

    def test_route_with_wrong_endpoints_reported(self, simple_line_design):
        # f0 should start at A (core c0), give it a route starting at B
        route = Route([Channel(Link("B", "C"))])
        simple_line_design.routes.set_route("f0", route)
        problems = validate_routes(simple_line_design)
        assert any("starts at" in p for p in problems)

    def test_route_for_unknown_flow_reported(self, simple_line_design):
        simple_line_design.routes.set_route(
            "ghost", Route([Channel(Link("A", "B"))])
        )
        problems = validate_routes(simple_line_design)
        assert any("unknown flow" in p for p in problems)

    def test_non_contiguous_route_reported(self, simple_line_design):
        # Route.__init__ enforces contiguity, so forge a broken route the
        # way a buggy tool or hand-edited design file would deliver one.
        broken = Route.__new__(Route)
        broken._channels = (
            Channel(Link("A", "B")),
            Channel(Link("C", "B")),  # B != C: the hops do not connect
        )
        simple_line_design.routes.set_route("f0", broken)
        problems = validate_routes(simple_line_design)
        assert any("not contiguous" in p for p in problems)

    def test_non_contiguous_route_fails_validate_design(self, simple_line_design):
        broken = Route.__new__(Route)
        broken._channels = (
            Channel(Link("A", "B")),
            Channel(Link("C", "B")),
        )
        simple_line_design.routes.set_route("f0", broken)
        with pytest.raises(ValidationError):
            validate_design(simple_line_design)

    def test_route_repeating_channel_reported(self, simple_line_design):
        simple_line_design.topology.add_bidirectional_link("A", "C")
        route = Route(
            [
                Channel(Link("A", "B")),
                Channel(Link("B", "C")),
                Channel(Link("C", "A")),
                Channel(Link("A", "B")),
                Channel(Link("B", "C")),
            ]
        )
        simple_line_design.routes.set_route("f0", route)
        problems = validate_routes(simple_line_design)
        assert any("twice" in p for p in problems)


class TestValidateDesign:
    def test_validation_error_carries_all_problems(self, simple_line_design):
        del simple_line_design.core_map["c0"]
        simple_line_design.routes.remove_route("f1")
        with pytest.raises(ValidationError) as excinfo:
            validate_design(simple_line_design)
        assert len(excinfo.value.problems) >= 2

    def test_is_valid_false_on_broken_design(self, simple_line_design):
        del simple_line_design.core_map["c0"]
        assert not is_valid(simple_line_design)
