"""Tests for the CLI export subcommand."""

import pytest

from repro.cli import main
from repro.core.removal import remove_deadlocks
from repro.examples_data.paper_ring import paper_ring_design
from repro.model.serialization import save_design


@pytest.fixture
def fixed_ring_file(tmp_path):
    design = remove_deadlocks(paper_ring_design()).design
    return save_design(design, tmp_path / "ring_fixed.json")


class TestExport:
    def test_topology_dot_to_stdout(self, fixed_ring_file, capsys):
        assert main(["export", str(fixed_ring_file), "topology"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "SW1" in out

    def test_cdg_dot_to_file(self, fixed_ring_file, tmp_path):
        out_path = tmp_path / "cdg.dot"
        assert main(["export", str(fixed_ring_file), "cdg", "-o", str(out_path)]) == 0
        content = out_path.read_text()
        assert content.startswith("digraph")
        assert ".vc0" in content

    def test_report_output(self, fixed_ring_file, capsys):
        assert main(["export", str(fixed_ring_file), "report"]) == 0
        out = capsys.readouterr().out
        assert "switches       : 4" in out
        assert "1 extra VCs" in out

    def test_export_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "nope.json"), "topology"]) == 2
        assert "error" in capsys.readouterr().err
