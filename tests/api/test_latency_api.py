"""The simulation axis of the experiment API: spec fields, latency report,
cached simulation results and seed reproducibility."""

import pytest

from repro.api.registry import simulation_engines, traffic_scenarios
from repro.api.reports import report_types
from repro.api.result import RunResult
from repro.api.runner import Runner, execute_spec
from repro.api.spec import ExperimentPlan, ReportRequest, RunSpec, expand_run_entry
from repro.errors import PlanError

#: A tiny but real evaluation point: synthesizes, removes, orders and
#: simulates in well under a second.
SMALL = dict(benchmark="D26_media", switch_count=6, sim_cycles=200)


class TestSpecFields:
    def test_defaults(self):
        spec = RunSpec(benchmark="D26_media", switch_count=8)
        assert spec.sim_engine == "compiled"
        assert spec.traffic_scenario == "flows"
        assert spec.injection_scale is None
        assert spec.sim_cycles == 3000
        assert spec.buffer_depth == 4

    def test_round_trip_with_simulation_fields(self):
        spec = RunSpec(
            benchmark="D26_media",
            switch_count=8,
            sim_engine="legacy",
            traffic_scenario="hotspot",
            injection_scale=1.5,
            sim_cycles=500,
            buffer_depth=2,
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_simulation_fields_in_fingerprint(self):
        base = RunSpec(benchmark="D26_media", switch_count=8)
        variants = [
            RunSpec(benchmark="D26_media", switch_count=8, sim_engine="legacy"),
            RunSpec(benchmark="D26_media", switch_count=8, traffic_scenario="uniform"),
            RunSpec(benchmark="D26_media", switch_count=8, injection_scale=1.0),
            RunSpec(benchmark="D26_media", switch_count=8, sim_cycles=100),
            RunSpec(benchmark="D26_media", switch_count=8, buffer_depth=2),
        ]
        fingerprints = {spec.fingerprint() for spec in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_invalid_values_rejected(self):
        with pytest.raises(PlanError):
            RunSpec(benchmark="D26_media", switch_count=8, injection_scale=-1.0)
        with pytest.raises(PlanError):
            RunSpec(benchmark="D26_media", switch_count=8, injection_scale="high")
        with pytest.raises(PlanError):
            RunSpec(benchmark="D26_media", switch_count=8, sim_cycles=0)
        with pytest.raises(PlanError):
            RunSpec(benchmark="D26_media", switch_count=8, buffer_depth=0)
        with pytest.raises(PlanError):
            RunSpec(benchmark="D26_media", switch_count=8, sim_engine="")

    def test_injection_scale_normalised_to_float(self):
        spec = RunSpec(benchmark="D26_media", switch_count=8, injection_scale=2)
        assert spec.injection_scale == 2.0
        assert isinstance(spec.injection_scale, float)

    def test_cost_only_specs_keep_their_pre_simulation_fingerprint(self):
        """Default sim fields are elided from the serialized form, so specs
        that never touch the simulation axis hash to the same content
        address as before the axis existed — warm caches stay warm."""
        spec = RunSpec(benchmark="D26_media", switch_count=8, seed=1)
        document = spec.to_dict()
        for name in ("sim_engine", "traffic_scenario", "injection_scale",
                     "sim_cycles", "buffer_depth"):
            assert name not in document
        # The historical content address of this exact spec (computed with
        # the pre-simulation 8-field schema); a change here silently
        # invalidates every user's artifact cache.
        assert spec.fingerprint() == (
            "bdc4b57cbbcf46982a8e033d01a01bf9a0cd136b6377ed49b89e6295b64d28f8"
        )

    def test_explicit_default_sim_values_share_the_fingerprint(self):
        implicit = RunSpec(benchmark="D26_media", switch_count=8)
        explicit = RunSpec(
            benchmark="D26_media",
            switch_count=8,
            sim_engine="compiled",
            traffic_scenario="flows",
            sim_cycles=3000,
            buffer_depth=4,
        )
        assert implicit.fingerprint() == explicit.fingerprint()


class TestGridExpansion:
    def test_injection_scales_axis(self):
        specs = expand_run_entry(
            {
                "benchmark": "D26_media",
                "switch_count": 8,
                "injection_scales": [0.5, 1.0],
                "traffic_scenario": "uniform",
            }
        )
        assert [spec.injection_scale for spec in specs] == [0.5, 1.0]
        assert all(spec.traffic_scenario == "uniform" for spec in specs)

    def test_scales_are_innermost_axis(self):
        specs = expand_run_entry(
            {
                "benchmark": "D26_media",
                "switch_counts": [6, 8],
                "injection_scales": [0.5, 1.0],
            }
        )
        assert [(s.switch_count, s.injection_scale) for s in specs] == [
            (6, 0.5),
            (6, 1.0),
            (8, 0.5),
            (8, 1.0),
        ]

    def test_entry_overrides_default_scale_axis(self):
        specs = expand_run_entry(
            {"benchmark": "D26_media", "switch_count": 8, "injection_scales": [2.0]},
            defaults={"injection_scale": 1.0},
        )
        assert [spec.injection_scale for spec in specs] == [2.0]

    def test_no_scale_means_no_simulation(self):
        specs = expand_run_entry({"benchmark": "D26_media", "switch_count": 8})
        assert specs[0].injection_scale is None


class TestLatencyReport:
    def test_registered(self):
        assert "latency" in report_types

    def test_specs_one_per_scale(self):
        report = report_types.get("latency")
        specs = report.specs(
            {"benchmark": "D26_media", "switch_count": 8, "injection_scales": [0.5, 1.0]}
        )
        assert [spec.injection_scale for spec in specs] == [0.5, 1.0]
        assert all(spec.benchmark == "D26_media" for spec in specs)

    def test_end_to_end_render(self, tmp_path):
        plan = ExperimentPlan(
            name="latency-test",
            reports=[
                ReportRequest(
                    type="latency",
                    params={**SMALL, "injection_scales": [0.5, 1.5]},
                )
            ],
        )
        outcome = Runner(cache_dir=tmp_path).run(plan)
        name, data = outcome.render_reports()[0]
        assert name == "latency"
        assert data["injection_scales"] == [0.5, 1.5]
        for variant in ("unprotected", "removal", "ordering"):
            curve = data["variants"][variant]
            assert len(curve["average_latency"]) == 2
            assert len(curve["delivered_flits_per_cycle"]) == 2
        # Second pass is served entirely from the cache and renders the same.
        second = Runner(cache_dir=tmp_path).run(plan)
        assert second.cache_hits == len(second.results) == 2
        assert second.render_reports()[0][1] == data


class TestSimulatingSpecs:
    def test_execute_spec_attaches_simulation(self):
        spec = RunSpec(injection_scale=1.0, **SMALL)
        result = execute_spec(spec)
        assert result.simulation is not None
        assert result.simulation["traffic_scenario"] == "flows"
        assert set(result.simulation["variants"]) == {
            "unprotected",
            "removal",
            "ordering",
        }
        metrics = result.simulation["variants"]["removal"]
        assert metrics["packets_delivered"] >= 0
        assert metrics["cycles_run"] > 0

    def test_simulation_round_trips_through_result_schema(self):
        spec = RunSpec(injection_scale=1.0, **SMALL)
        result = execute_spec(spec)
        clone = RunResult.from_dict(result.to_dict())
        assert clone.simulation == result.simulation

    def test_cached_document_without_simulation_is_rejected(self):
        spec = RunSpec(injection_scale=1.0, **SMALL)
        result = execute_spec(spec)
        document = result.to_dict()
        del document["simulation"]
        with pytest.raises(PlanError):
            RunResult.from_dict(document)

    def test_cost_only_spec_has_no_simulation_key(self):
        spec = RunSpec(benchmark="D26_media", switch_count=6)
        result = execute_spec(spec)
        assert result.simulation is None
        assert "simulation" not in result.to_dict()

    def test_repeated_execution_is_reproducible(self):
        """RunSpec.seed drives the traffic RNG: same spec, same metrics."""
        spec = RunSpec(injection_scale=2.0, seed=3, **SMALL)
        first = execute_spec(spec)
        second = execute_spec(spec)
        assert first.simulation == second.simulation

    def test_seed_changes_simulation(self):
        base = dict(injection_scale=2.0, **SMALL)
        a = execute_spec(RunSpec(seed=0, **base))
        b = execute_spec(RunSpec(seed=1, **base))
        assert a.simulation["variants"] != b.simulation["variants"]

    def test_engines_agree_through_the_api(self):
        compiled = execute_spec(RunSpec(injection_scale=1.5, **SMALL))
        legacy = execute_spec(RunSpec(injection_scale=1.5, sim_engine="legacy", **SMALL))
        assert compiled.simulation["variants"] == legacy.simulation["variants"]


class TestRegistriesExported:
    def test_api_package_exports_new_registries(self):
        import repro.api as api

        assert api.simulation_engines is simulation_engines
        assert api.traffic_scenarios is traffic_scenarios
