"""Tests for RunSpec / ExperimentPlan serialization and grid expansion."""

import json

import pytest

from repro.api.spec import (
    ExperimentPlan,
    ReportRequest,
    RunSpec,
    expand_run_entry,
)
from repro.errors import PlanError


class TestRunSpec:
    def test_round_trip_through_dict(self):
        spec = RunSpec(
            benchmark="D36_8",
            switch_count=14,
            seed=3,
            engine="rebuild",
            ordering_strategy="layered",
            synthesis={"extra_link_fraction": 0.25},
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_defaults(self):
        spec = RunSpec(benchmark="D26_media", switch_count=8)
        assert spec.seed == 0
        assert spec.engine == "context"
        assert spec.ordering_strategy == "hop_index"
        assert spec.synthesis_backend == "custom"
        assert spec.routing_engine == "indexed"
        assert spec.synthesis == {}

    def test_unknown_field_rejected(self):
        with pytest.raises(PlanError, match="unknown run spec field"):
            RunSpec.from_dict({"benchmark": "D26_media", "switch_count": 8, "bogus": 1})

    def test_missing_required_fields_rejected(self):
        with pytest.raises(PlanError, match="benchmark"):
            RunSpec.from_dict({"switch_count": 8})
        with pytest.raises(PlanError, match="switch_count"):
            RunSpec.from_dict({"benchmark": "D26_media"})

    def test_bad_types_rejected(self):
        with pytest.raises(PlanError):
            RunSpec(benchmark="D26_media", switch_count="eight")
        with pytest.raises(PlanError):
            RunSpec(benchmark="D26_media", switch_count=0)
        with pytest.raises(PlanError):
            RunSpec(benchmark="", switch_count=8)
        with pytest.raises(PlanError):
            RunSpec(benchmark="D26_media", switch_count=8, synthesis="nope")

    def test_fingerprint_sensitive_to_every_field(self):
        base = RunSpec(benchmark="D26_media", switch_count=8)
        variants = [
            RunSpec(benchmark="D36_8", switch_count=8),
            RunSpec(benchmark="D26_media", switch_count=9),
            RunSpec(benchmark="D26_media", switch_count=8, seed=1),
            RunSpec(benchmark="D26_media", switch_count=8, engine="rebuild"),
            RunSpec(benchmark="D26_media", switch_count=8, ordering_strategy="layered"),
            RunSpec(benchmark="D26_media", switch_count=8, synthesis_backend="mesh"),
            RunSpec(benchmark="D26_media", switch_count=8, routing_engine="legacy"),
            RunSpec(benchmark="D26_media", switch_count=8, synthesis={"seed": 2}),
        ]
        fingerprints = {spec.fingerprint() for spec in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_synthesis_fingerprint_shared_across_engines(self):
        a = RunSpec(benchmark="D26_media", switch_count=8, engine="incremental")
        b = RunSpec(
            benchmark="D26_media",
            switch_count=8,
            engine="rebuild",
            ordering_strategy="layered",
        )
        assert a.synthesis_fingerprint() == b.synthesis_fingerprint()
        assert a.fingerprint() != b.fingerprint()

    def test_synthesis_fingerprint_sensitive_to_design_inputs(self):
        a = RunSpec(benchmark="D26_media", switch_count=8)
        b = RunSpec(benchmark="D26_media", switch_count=8, synthesis={"max_switch_degree": 5})
        assert a.synthesis_fingerprint() != b.synthesis_fingerprint()

    def test_routing_engine_round_trips_and_keys_the_design_cache(self):
        spec = RunSpec(benchmark="D26_media", switch_count=8, routing_engine="legacy")
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone.routing_engine == "legacy"
        assert clone.fingerprint() == spec.fingerprint()
        # A third-party engine must never share a cached design with the
        # built-ins, so the synthesis fingerprint includes the engine.
        default = RunSpec(benchmark="D26_media", switch_count=8)
        assert spec.synthesis_fingerprint() != default.synthesis_fingerprint()

    def test_routing_engine_expands_through_grid_entries(self):
        specs = expand_run_entry(
            {"benchmark": "D26_media", "switch_counts": [4, 6], "routing_engine": "legacy"}
        )
        assert [s.routing_engine for s in specs] == ["legacy", "legacy"]


class TestGridExpansion:
    def test_cartesian_product_order(self):
        specs = expand_run_entry(
            {
                "benchmarks": ["A1", "B2"],
                "switch_counts": [4, 6],
                "seeds": [0, 1],
            }
        )
        combos = [(s.benchmark, s.switch_count, s.seed) for s in specs]
        assert combos == [
            ("A1", 4, 0),
            ("A1", 4, 1),
            ("A1", 6, 0),
            ("A1", 6, 1),
            ("B2", 4, 0),
            ("B2", 4, 1),
            ("B2", 6, 0),
            ("B2", 6, 1),
        ]

    def test_defaults_merge_under_entry(self):
        specs = expand_run_entry(
            {"benchmark": "D26_media", "switch_count": 8},
            defaults={"engine": "rebuild", "seed": 5},
        )
        assert specs[0].engine == "rebuild"
        assert specs[0].seed == 5

    def test_plural_entry_key_overrides_singular_default(self):
        # The documented schema: defaults {"seed": 0} with a run entry
        # using "seeds" must not conflict — the entry wins the whole axis.
        specs = expand_run_entry(
            {"benchmark": "D26_media", "switch_count": 8, "seeds": [1, 2]},
            defaults={"seed": 0},
        )
        assert [s.seed for s in specs] == [1, 2]

    def test_singular_entry_key_overrides_plural_default(self):
        specs = expand_run_entry(
            {"benchmark": "D26_media", "switch_count": 8, "seed": 7},
            defaults={"seeds": [0, 1]},
        )
        assert [s.seed for s in specs] == [7]

    def test_docstring_example_plan_parses(self):
        document = {
            "format_version": 1,
            "name": "my-plan",
            "defaults": {"seed": 0, "engine": "incremental"},
            "runs": [
                {"benchmark": "D26_media", "switch_counts": [5, 8, 11]},
                {"benchmarks": ["D36_4", "D36_8"], "switch_count": 14, "seeds": [0, 1]},
            ],
            "reports": ["figure8", {"type": "figure9", "switch_counts": [10, 14]}],
        }
        plan = ExperimentPlan.from_dict(document)
        assert len(plan.specs) == 3 + 4
        assert all(spec.engine == "incremental" for spec in plan.specs)

    def test_entry_overrides_defaults(self):
        specs = expand_run_entry(
            {"benchmark": "D26_media", "switch_count": 8, "engine": "incremental"},
            defaults={"engine": "rebuild"},
        )
        assert specs[0].engine == "incremental"

    def test_singular_and_plural_conflict_rejected(self):
        with pytest.raises(PlanError, match="both"):
            expand_run_entry(
                {"benchmark": "A", "benchmarks": ["B"], "switch_count": 8}
            )

    def test_missing_benchmark_rejected(self):
        with pytest.raises(PlanError, match="benchmark"):
            expand_run_entry({"switch_count": 8})

    def test_unknown_entry_field_rejected(self):
        with pytest.raises(PlanError, match="unknown run entry field"):
            expand_run_entry({"benchmark": "A", "switch_count": 8, "typo": 1})


class TestReportRequest:
    def test_string_shorthand(self):
        request = ReportRequest.from_dict("figure8")
        assert request.type == "figure8"
        assert request.params == {}
        assert request.to_dict() == "figure8"

    def test_mapping_with_params(self):
        request = ReportRequest.from_dict({"type": "figure9", "switch_counts": [10, 14]})
        assert request.params == {"switch_counts": [10, 14]}
        assert request.to_dict() == {"type": "figure9", "switch_counts": [10, 14]}

    def test_missing_type_rejected(self):
        with pytest.raises(PlanError, match="type"):
            ReportRequest.from_dict({"switch_counts": [10]})


class TestExperimentPlan:
    def test_json_round_trip(self):
        plan = ExperimentPlan.from_grid(
            "round-trip",
            ["D26_media", "D36_8"],
            [8, 14],
            reports=["figure8"],
        )
        clone = ExperimentPlan.from_json(plan.to_json())
        assert clone.name == plan.name
        assert clone.specs == plan.specs
        assert clone.reports == plan.reports

    def test_save_and_load(self, tmp_path):
        plan = ExperimentPlan.from_grid("disk", "D26_media", [8])
        path = plan.save(tmp_path / "plan.json")
        assert ExperimentPlan.load(path).specs == plan.specs

    def test_load_missing_file_is_plan_error(self, tmp_path):
        with pytest.raises(PlanError, match="could not read"):
            ExperimentPlan.load(tmp_path / "none.json")

    def test_invalid_json_is_plan_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PlanError, match="invalid plan JSON"):
            ExperimentPlan.load(path)

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(PlanError, match="unknown plan field"):
            ExperimentPlan.from_dict({"name": "x", "rnus": []})

    def test_unsupported_version_rejected(self):
        with pytest.raises(PlanError, match="format version"):
            ExperimentPlan.from_dict({"format_version": 99, "runs": []})

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError, match="nothing to execute"):
            ExperimentPlan.from_dict({"name": "empty"})

    def test_all_specs_deduplicates_by_fingerprint(self):
        document = {
            "name": "dedup",
            "runs": [
                {"benchmark": "D26_media", "switch_counts": [6, 9]},
                {"benchmark": "D26_media", "switch_count": 6},
            ],
            "reports": [{"type": "figure8", "switch_counts": [6, 12]}],
        }
        plan = ExperimentPlan.from_dict(document)
        specs = plan.all_specs()
        counts = [(s.benchmark, s.switch_count) for s in specs]
        # 6 and 9 from the runs (deduped), 12 added by the report.
        assert counts == [("D26_media", 6), ("D26_media", 9), ("D26_media", 12)]

    def test_reports_share_specs_across_types(self):
        plan = ExperimentPlan.from_dict(
            {"name": "shared", "reports": ["figure10", "area", "overhead"]}
        )
        # All three reports evaluate the same six benchmarks at 14 switches.
        assert len(plan.all_specs()) == 6
