"""The Runner batch planner: grouping, fallbacks and cache invisibility.

Batching is a pure execution strategy — it must never show up in the
artifact cache layout, the fingerprints, or the record schema.  The tests
here pin that contract end to end: grouped specs produce byte-identical
cached ``RunResult`` documents to solo execution, a plan run twice is
served entirely from cache, cost bundles make load points share one
removal run, and every ineligible shape (fault schedules, trace lanes
with disagreeing horizons, non-batched engines) falls back to per-spec
execution with correct results.
"""

from __future__ import annotations

import json

import pytest

from repro.api.cache import ArtifactCache
from repro.api.registry import removal_engines, synthesis_backends
from repro.api.runner import (
    COST_KIND,
    DESIGN_KIND,
    RESULT_KIND,
    Runner,
    _plan_batches,
    execute_spec,
    execute_spec_batch,
)
from repro.api.spec import ExperimentPlan, ReportRequest, RunSpec


def _grid(scales, **overrides) -> list:
    base = dict(
        benchmark="D26_media",
        switch_count=8,
        sim_cycles=300,
        sim_engine="batched",
    )
    base.update(overrides)
    return [RunSpec(injection_scale=scale, **base) for scale in scales]


@pytest.fixture
def counting_backend(monkeypatch):
    """Replace the 'custom' synthesis backend with a call-counting wrapper."""
    real = synthesis_backends.get("custom")
    calls = []

    def wrapper(traffic, config):
        calls.append((traffic.name, config.n_switches))
        return real(traffic, config)

    monkeypatch.setitem(synthesis_backends._entries, "custom", wrapper)
    return calls


@pytest.fixture
def counting_removal(monkeypatch):
    """Replace the default removal engine with a call-counting wrapper."""
    real = removal_engines.get("context")
    calls = []

    def wrapper(*args, **kwargs):
        calls.append(True)
        return real(*args, **kwargs)

    monkeypatch.setitem(removal_engines._entries, "context", wrapper)
    return calls


class TestPlanBatches:
    def test_load_points_group_into_one_batch(self):
        specs = _grid([0.5, 1.0, 1.5])
        batches, overrides = _plan_batches(specs)
        assert batches == [[0, 1, 2]]
        assert overrides == {}

    def test_compiled_specs_never_batch(self):
        specs = _grid([0.5, 1.0, 1.5], sim_engine="compiled")
        batches, overrides = _plan_batches(specs)
        assert batches == [[0], [1], [2]]
        assert overrides == {}

    def test_different_designs_group_separately(self):
        specs = _grid([0.5, 1.0]) + _grid([0.5, 1.0], switch_count=10)
        batches, _ = _plan_batches(specs)
        assert batches == [[0, 1], [2, 3]]

    def test_different_sim_cycles_split_groups(self):
        specs = _grid([0.5, 1.0]) + _grid([0.5], sim_cycles=999)
        batches, _ = _plan_batches(specs)
        assert batches == [[0, 1], [2]]

    def test_cost_only_fields_do_not_split_groups(self):
        """Seeds and scenarios vary inside one group; engines do not."""
        specs = _grid([0.5, 1.0]) + _grid(
            [1.5], seed=7, traffic_scenario="uniform"
        )
        # seed participates in synthesis, so it splits; scenario alone must not.
        specs_same_seed = _grid([0.5, 1.0]) + _grid(
            [1.5], traffic_scenario="uniform"
        )
        assert _plan_batches(specs)[0] == [[0, 1], [2]]
        assert _plan_batches(specs_same_seed)[0] == [[0, 1, 2]]

    def test_fault_specs_run_solo(self):
        specs = _grid([0.5, 1.0]) + _grid([1.5], fault_model="uniform")
        batches, overrides = _plan_batches(specs)
        assert batches == [[0, 1], [2]]
        assert overrides == {}  # engine-level fallback handles the fault spec

    def test_trace_lanes_with_one_horizon_stay(self):
        specs = _grid(
            [0.5, 1.0],
            traffic_scenario="trace",
            scenario_params={"trace_cycles": 200},
        )
        batches, overrides = _plan_batches(specs)
        assert batches == [[0, 1]]
        assert overrides == {}

    def test_trace_lanes_with_mixed_horizons_demote(self):
        specs = [
            RunSpec(
                benchmark="D26_media",
                switch_count=8,
                sim_cycles=300,
                sim_engine="batched",
                injection_scale=1.0,
                traffic_scenario="trace",
                scenario_params={"trace_cycles": cycles},
            )
            for cycles in (200, 400)
        ] + _grid([1.5])
        with pytest.warns(RuntimeWarning, match="batched-engine-fallback"):
            batches, overrides = _plan_batches(specs)
        assert batches == [[2], [0], [1]]
        assert overrides == {0: "compiled", 1: "compiled"}


class TestBatchExecutionInvisibility:
    def test_records_byte_identical_to_solo(self, tmp_path):
        """Grouped execution writes the very bytes solo execution writes."""
        specs = _grid([0.5, 1.0, 1.5])
        batch_cache = ArtifactCache(tmp_path / "batch")
        execute_spec_batch(specs, batch_cache)

        solo_cache = ArtifactCache(tmp_path / "solo")
        for spec in specs:
            # Seed the solo cache with the shared artifacts so the
            # wall-clock removal_runtime_s scalar matches exactly.
            for kind in (DESIGN_KIND, COST_KIND):
                fingerprint = (
                    spec.synthesis_fingerprint()
                    if kind == DESIGN_KIND
                    else spec.cost_fingerprint()
                )
                document = batch_cache.get(kind, fingerprint)
                if document is not None:
                    solo_cache.put(kind, fingerprint, document)
            execute_spec(spec, solo_cache)

        for spec in specs:
            key = spec.fingerprint()
            batch_bytes = batch_cache._path(RESULT_KIND, key).read_text()
            solo_bytes = solo_cache._path(RESULT_KIND, key).read_text()
            assert batch_bytes == solo_bytes

    def test_engine_field_stays_batched(self, tmp_path):
        results = execute_spec_batch(_grid([0.5, 1.0]), None)
        for result in results:
            assert result.simulation["engine"] == "batched"

    def test_plan_second_run_all_cache_hits(self, tmp_path):
        plan = ExperimentPlan(name="grid", specs=_grid([0.5, 1.0, 1.5]))
        runner = Runner(cache_dir=tmp_path / "cache")
        first = runner.run(plan)
        assert first.cache_hits == 0
        second = runner.run(plan)
        assert second.cache_hits == 3
        assert all(r.cache_hit for r in second.results)
        assert [r.to_dict() for r in second.results] == [
            r.to_dict() for r in first.results
        ]

    def test_parallel_and_serial_agree(self, tmp_path):
        specs = _grid([0.5, 1.0]) + _grid([1.5], sim_engine="compiled")
        plan = ExperimentPlan(name="mixed", specs=specs)
        serial = Runner(cache_dir=None).run(plan)
        parallel = Runner(cache_dir=tmp_path / "cache", jobs=2).run(plan)
        for mine, theirs in zip(serial.results, parallel.results):
            assert mine.simulation == theirs.simulation
            assert mine.spec.fingerprint() == theirs.spec.fingerprint()

    def test_latency_report_batches_transparently(self, tmp_path):
        """A latency report on the batched engine groups its load points."""
        plan = ExperimentPlan.from_dict(
            {
                "format_version": 1,
                "name": "latency-batched",
                "reports": [
                    {
                        "type": "latency",
                        "benchmark": "D26_media",
                        "switch_count": 8,
                        "injection_scales": [0.5, 1.0],
                        "sim_cycles": 300,
                        "sim_engine": "batched",
                    }
                ],
            }
        )
        batches, _ = _plan_batches(plan.all_specs())
        assert batches == [[0, 1]]
        result = Runner(cache_dir=tmp_path / "cache").run(plan)
        rendered = result.render_reports()
        assert rendered[0][0] == "latency"
        assert rendered[0][1]["sim_engine"] == "batched"
        curve = rendered[0][1]["variants"]["removal"]
        assert len(curve["average_latency"]) == 2


class TestCostBundle:
    def test_load_points_share_one_cost_bundle(self, tmp_path, counting_backend):
        specs = _grid([0.5, 1.0, 1.5], sim_engine="compiled")
        runner = Runner(cache_dir=tmp_path / "cache")
        for spec in specs:
            runner.run_spec(spec)
        assert counting_backend == [("D26_media", 8)]
        assert runner.cache.entry_count(COST_KIND) == 1
        assert runner.cache.entry_count(RESULT_KIND) == 3

    def test_second_load_point_skips_removal(self, tmp_path, counting_removal):
        specs = _grid([0.5, 1.0], sim_engine="compiled")
        runner = Runner(cache_dir=tmp_path / "cache")
        runner.run_spec(specs[0])
        first_removal_calls = len(counting_removal)
        assert first_removal_calls > 0
        runner.run_spec(specs[1])
        assert len(counting_removal) == first_removal_calls

    def test_removal_runtime_identical_across_load_points(self, tmp_path):
        specs = _grid([0.5, 1.0], sim_engine="compiled")
        runner = Runner(cache_dir=tmp_path / "cache")
        first = runner.run_spec(specs[0])
        second = runner.run_spec(specs[1])
        assert first.removal_runtime_s == second.removal_runtime_s
        assert first.removal_extra_vcs == second.removal_extra_vcs

    def test_cost_bundle_respects_engine_and_strategy(self, tmp_path):
        """Different removal engines must not share a cost bundle."""
        base = _grid([1.0], sim_engine="compiled")[0]
        varied = RunSpec(**{**base.to_dict(), "engine": "rebuild"})
        runner = Runner(cache_dir=tmp_path / "cache")
        runner.run_spec(base)
        runner.run_spec(varied)
        assert runner.cache.entry_count(COST_KIND) == 2
        assert runner.cache.entry_count(DESIGN_KIND) == 1

    def test_corrupt_cost_bundle_recomputed(self, tmp_path, counting_removal):
        spec = _grid([1.0], sim_engine="compiled")[0]
        runner = Runner(cache_dir=tmp_path / "cache")
        runner.run_spec(spec)
        calls = len(counting_removal)
        path = runner.cache._path(COST_KIND, spec.cost_fingerprint())
        path.write_text("{not json")
        # Result cache still hits, so force a fresh simulation-side spec.
        other = _grid([2.0], sim_engine="compiled")[0]
        runner.run_spec(other)
        assert len(counting_removal) > calls  # bundle recomputed, not trusted


class TestFallbackCorrectness:
    def test_trace_horizon_fallback_results_match_compiled(self, tmp_path):
        """Demoted trace lanes still produce exactly their solo records."""
        specs = [
            RunSpec(
                benchmark="D26_media",
                switch_count=8,
                sim_cycles=300,
                sim_engine="batched",
                injection_scale=1.0,
                traffic_scenario="trace",
                scenario_params={"trace_cycles": cycles},
            )
            for cycles in (150, 250)
        ]
        plan = ExperimentPlan(name="traces", specs=specs)
        with pytest.warns(RuntimeWarning, match="batched-engine-fallback"):
            result = Runner(cache_dir=tmp_path / "cache").run(plan)
        for record, spec in zip(result.results, specs):
            solo = execute_spec(spec, None)
            assert record.simulation == solo.simulation
            # The record still claims the engine the spec asked for.
            assert record.simulation["engine"] == "batched"

    def test_fault_schedule_spec_on_batched_engine(self, tmp_path):
        """A fault-carrying batched spec runs solo via the engine fallback."""
        spec = RunSpec(
            benchmark="D26_media",
            switch_count=8,
            sim_cycles=300,
            sim_engine="batched",
            injection_scale=1.5,
            fault_schedule={"random": {"link_failures": 1, "seed": 3}},
        )
        batches, overrides = _plan_batches([spec])
        assert batches == [[0]]
        assert overrides == {}
        with pytest.warns(RuntimeWarning, match="batched-engine-fallback"):
            result = execute_spec(spec, None)
        reference = execute_spec(
            RunSpec(**{**spec.to_dict(), "sim_engine": "compiled"}), None
        )
        for variant in ("unprotected", "removal", "ordering"):
            assert (
                result.simulation["variants"][variant]
                == reference.simulation["variants"][variant]
            )

    def test_plain_solo_batched_spec_is_exact(self):
        """An ungrouped batched spec (B = 1) matches compiled exactly."""
        spec = _grid([1.0])[0]
        batched = execute_spec(spec, None)
        compiled = execute_spec(
            RunSpec(**{**spec.to_dict(), "sim_engine": "compiled"}), None
        )
        assert batched.simulation["variants"] == compiled.simulation["variants"]
