"""Spec plumbing of the fault-model axis and the availability report.

``fault_model``/``fault_params``/``fault_recovery`` follow the same
default-elision rule as every other simulation-axis field: at their
defaults they contribute nothing to the spec's content address, so every
record cached before the axis existed is still a hit.  The availability
report builds a (policy x fault seed) grid over those fields with the
design seed pinned, and its render must never average the ``-1``
"never drained" sentinel into a latency percentile.
"""

from __future__ import annotations

import pytest

from repro.api.reports import (
    DEFAULT_AVAILABILITY_POLICIES,
    DEFAULT_AVAILABILITY_SEEDS,
    _percentile,
    _sentinel_free,
    report_types,
)
from repro.api.result import RunResult
from repro.api.spec import RunSpec, expand_run_entry
from repro.errors import PlanError


def _spec(**overrides) -> RunSpec:
    base = dict(benchmark="D36_8", switch_count=14, injection_scale=1.0)
    base.update(overrides)
    return RunSpec(**base)


class TestFaultModelFields:
    def test_defaults_are_elided_from_fingerprint(self):
        plain = _spec()
        explicit = _spec(fault_model=None, fault_params={}, fault_recovery="removal")
        document = explicit.to_dict()
        for key in ("fault_model", "fault_params", "fault_recovery"):
            assert key not in document
        assert plain.fingerprint() == explicit.fingerprint()

    def test_each_field_changes_the_fingerprint(self):
        plain = _spec()
        modelled = _spec(fault_model="uniform")
        parametrised = _spec(fault_model="uniform", fault_params={"link_failures": 2})
        idled = _spec(fault_model="uniform", fault_recovery="idle")
        fingerprints = {
            spec.fingerprint() for spec in (plain, modelled, parametrised, idled)
        }
        assert len(fingerprints) == 4

    def test_round_trip(self):
        spec = _spec(
            fault_model="spatial_burst",
            fault_params={"radius": 2, "seed": 7},
            fault_recovery="protection",
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_model_and_schedule_are_mutually_exclusive(self):
        with pytest.raises(PlanError, match="mutually exclusive"):
            _spec(fault_model="uniform", fault_schedule={"random": {}})

    def test_params_without_model_rejected(self):
        with pytest.raises(PlanError, match="without a fault_model"):
            _spec(fault_params={"radius": 1})

    @pytest.mark.parametrize("value", ["", 7, ["uniform"]])
    def test_invalid_fault_model_rejected(self, value):
        with pytest.raises(PlanError):
            _spec(fault_model=value)

    @pytest.mark.parametrize("value", ["radius=1", 7, ["radius"]])
    def test_invalid_fault_params_rejected(self, value):
        with pytest.raises(PlanError):
            _spec(fault_model="uniform", fault_params=value)

    @pytest.mark.parametrize("value", ["", None, 3])
    def test_invalid_fault_recovery_rejected(self, value):
        with pytest.raises(PlanError):
            _spec(fault_recovery=value)

    def test_expand_run_entry_threads_the_axis(self):
        specs = expand_run_entry(
            {
                "benchmark": "D36_8",
                "switch_counts": [10, 14],
                "injection_scale": 1.0,
                "fault_model": "cascade",
                "fault_params": {"failures": 3},
                "fault_recovery": "idle",
            }
        )
        assert len(specs) == 2
        assert all(spec.fault_model == "cascade" for spec in specs)
        assert all(spec.fault_params == {"failures": 3} for spec in specs)
        assert all(spec.fault_recovery == "idle" for spec in specs)

    def test_grid_points_share_one_design_cache_entry(self):
        one = _spec(fault_model="uniform", fault_params={"seed": 0})
        two = _spec(fault_model="uniform", fault_params={"seed": 1})
        assert one.fingerprint() != two.fingerprint()
        assert one.synthesis_fingerprint() == two.synthesis_fingerprint()


class TestPercentile:
    def test_nearest_rank(self):
        assert _percentile([4, 1, 3, 2], 50) == 2
        assert _percentile(list(range(1, 101)), 95) == 95
        assert _percentile(list(range(1, 101)), 99) == 99
        assert _percentile([7], 99) == 7

    def test_empty_sample(self):
        assert _percentile([], 50) is None


class TestSentinelFree:
    def test_recomputes_aggregates_excluding_the_sentinel(self):
        entry = _sentinel_free(
            {"recovery_cycles": [10, -1, 20], "mean_recovery_cycles": 9.667}
        )
        assert entry["mean_recovery_cycles"] == 15.0
        assert entry["batches_never_drained"] == 1
        # The wire list keeps its sentinel untouched.
        assert entry["recovery_cycles"] == [10, -1, 20]

    def test_pre_axis_record_shape_passes_through(self):
        assert _sentinel_free({}) == {}


def _result(spec: RunSpec, simulation) -> RunResult:
    return RunResult(
        spec=spec,
        removal_extra_vcs=1,
        ordering_extra_vcs=5,
        removal_iterations=2,
        initial_cycle_count=3,
        removal_runtime_s=0.1,
        unprotected_power_mw=10.0,
        removal_power_mw=11.0,
        ordering_power_mw=12.0,
        unprotected_area_mm2=1.0,
        removal_area_mm2=1.1,
        ordering_area_mm2=1.2,
        simulation=simulation,
    )


class TestAvailabilityReport:
    PARAMS = {
        "benchmark": "D26_media",
        "switch_count": 10,
        "fault_model": "spatial_burst",
        "fault_params": {"radius": 1},
        "recovery_policies": ["removal", "idle"],
        "seeds": list(range(10)),
    }

    def test_specs_form_the_policy_by_seed_grid(self):
        report = report_types.get("availability")
        specs = report.specs(self.PARAMS)
        assert len(specs) == 20
        assert [spec.fault_recovery for spec in specs[:10]] == ["removal"] * 10
        assert [spec.fault_recovery for spec in specs[10:]] == ["idle"] * 10
        assert [spec.fault_params["seed"] for spec in specs[:10]] == list(range(10))
        # The design seed is pinned: one synthesis fingerprint for the grid.
        assert len({spec.synthesis_fingerprint() for spec in specs}) == 1
        assert all(spec.fault_params["radius"] == 1 for spec in specs)
        assert all(spec.fault_model == "spatial_burst" for spec in specs)

    def test_default_grid_is_four_policies_by_ten_seeds(self):
        report = report_types.get("availability")
        specs = report.specs({})
        assert len(specs) == len(DEFAULT_AVAILABILITY_POLICIES) * len(
            DEFAULT_AVAILABILITY_SEEDS
        )

    def test_render_folds_the_grid_without_averaging_sentinels(self):
        report = report_types.get("availability")
        specs = report.specs(self.PARAMS)
        lookup = {}
        for spec in specs:
            fault_seed = spec.fault_params["seed"]
            if spec.fault_recovery == "removal":
                resilience = {
                    "recovery_cycles": [10 + fault_seed],
                    "flits_lost": 0,
                    "post_fault_deadlock_free": True,
                }
                delivered = 100
            else:
                # Seed 0 never drains its batch and ends deadlocked.
                resilience = {
                    "recovery_cycles": [-1 if fault_seed == 0 else 30],
                    "flits_lost": 8,
                    "post_fault_deadlock_free": fault_seed != 0,
                }
                delivered = 90
            simulation = {
                "engine": "compiled",
                "variants": {
                    "removal": {
                        "packets_injected": 100,
                        "packets_delivered": delivered,
                        "resilience": resilience,
                    }
                },
            }
            lookup[spec.fingerprint()] = _result(spec, simulation)

        rendered = report.render(self.PARAMS, lookup)
        assert rendered["fault_model"] == "spatial_burst"
        assert rendered["seeds"] == list(range(10))

        removal = rendered["policies"]["removal"]
        assert removal["mean_delivered_fraction"] == 1.0
        assert removal["recovery_cycles_p50"] == 14  # nearest rank of 10..19
        assert removal["recovery_cycles_p99"] == 19
        assert removal["recovery_samples"] == 10
        assert removal["batches_never_drained"] == 0
        assert removal["deadlock_free_fraction"] == 1.0

        idle = rendered["policies"]["idle"]
        assert idle["mean_delivered_fraction"] == pytest.approx(0.9)
        # Nine drained batches at 30 cycles; the -1 sentinel is counted,
        # never averaged.
        assert idle["recovery_samples"] == 9
        assert idle["recovery_cycles_p50"] == 30
        assert idle["batches_never_drained"] == 1
        assert idle["deadlock_free_fraction"] == pytest.approx(0.9)
        assert idle["mean_flits_lost"] == pytest.approx(8.0)
