"""Tests for the pluggable strategy registries (repro.api.registry)."""

import pytest

from repro.api.registry import (
    Registry,
    ordering_strategies,
    removal_engines,
    synthesis_backends,
)
from repro.core.removal import DeadlockRemover, remove_deadlocks
from repro.errors import OrderingError, RegistryError, RemovalError
from repro.routing.ordering import apply_resource_ordering


class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("thing")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry
        assert registry.names() == ["a"]
        assert len(registry) == 1

    def test_decorator_registration(self):
        registry = Registry("thing")

        @registry.register("fn")
        def implementation():
            return "ran"

        assert registry.get("fn") is implementation
        assert implementation() == "ran"

    def test_unknown_name_raises_with_available_list(self):
        registry = Registry("thing")
        registry.register("known", 1)
        with pytest.raises(RegistryError, match="unknown thing 'missing'.*known"):
            registry.get("missing")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("a", 2)

    def test_bad_names_rejected(self):
        registry = Registry("thing")
        with pytest.raises(RegistryError):
            registry.register("", 1)
        with pytest.raises(RegistryError):
            registry.register(3, 1)

    def test_unregister(self):
        registry = Registry("thing")
        registry.register("a", 1)
        registry.unregister("a")
        assert "a" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("a")

    def test_provider_loaded_lazily(self):
        registry = Registry("json api", provider="json")
        # Provider import happens on first query, not construction.
        assert registry._provider_loaded is False
        assert registry.names() == []
        assert registry._provider_loaded is True


class TestBuiltinRegistries:
    def test_removal_engines(self):
        assert removal_engines.names() == ["context", "incremental", "rebuild"]

    def test_ordering_strategies(self):
        assert ordering_strategies.names() == ["hop_index", "layered"]

    def test_synthesis_backends(self):
        assert synthesis_backends.names() == ["custom", "family", "mesh"]


class TestDispatchThroughRegistries:
    def test_custom_engine_is_dispatched(self, ring_design_fixture):
        calls = []

        @removal_engines.register("recording")
        def _recording_engine(remover, work, rng):
            calls.append(remover.engine)
            return remover._remove_rebuild(work, rng)

        try:
            result = remove_deadlocks(ring_design_fixture, engine="recording")
        finally:
            removal_engines.unregister("recording")
        assert calls == ["recording"]
        assert result.added_vc_count == 1

    def test_unknown_engine_still_raises_removal_error(self):
        with pytest.raises(RemovalError, match="unknown removal engine"):
            DeadlockRemover(engine="warp")

    def test_custom_ordering_strategy_is_dispatched(self, ring_design_fixture):
        from repro.routing.ordering import _hop_index_strategy

        seen = []

        @ordering_strategies.register("spy")
        def _spy_strategy(work):
            seen.append(work.name)
            return _hop_index_strategy(work)

        try:
            result = apply_resource_ordering(ring_design_fixture, strategy="spy")
        finally:
            ordering_strategies.unregister("spy")
        assert seen and result.extra_vcs == 3

    def test_unknown_strategy_still_raises_ordering_error(self, ring_design_fixture):
        with pytest.raises(OrderingError, match="unknown resource-ordering strategy"):
            apply_resource_ordering(ring_design_fixture, strategy="alphabetical")

    def test_mesh_backend_builds_deadlock_free_design(self, d26_traffic):
        from repro.core.removal import is_deadlock_free
        from repro.synthesis.builder import SynthesisConfig

        backend = synthesis_backends.get("mesh")
        design = backend(d26_traffic, SynthesisConfig(n_switches=9))
        assert design.topology.switch_count == 9
        assert is_deadlock_free(design)  # XY-routed mesh
