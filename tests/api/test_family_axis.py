"""Tests for the topology-family axis of RunSpec and the scale report."""

from __future__ import annotations

import pytest

from repro.api.reports import DEFAULT_SCALE_POINTS, report_types, run_report
from repro.api.runner import execute_spec
from repro.api.spec import ExperimentPlan, RunSpec
from repro.errors import PlanError


class TestFamilySpecFields:
    def test_baseline_spec_dict_unchanged(self):
        """Specs without the new axes serialize exactly as before PR 8."""
        spec = RunSpec(benchmark="D36_8", switch_count=14)
        assert sorted(spec.to_dict()) == [
            "benchmark",
            "engine",
            "ordering_strategy",
            "routing_engine",
            "seed",
            "switch_count",
            "synthesis",
            "synthesis_backend",
        ]

    def test_family_fields_round_trip(self):
        spec = RunSpec(
            benchmark="uniform_c18_f2",
            switch_count=9,
            topology_family="torus",
            family_params={"rows": 3, "cols": 3},
            traffic_scenario="trace",
            scenario_params={"trace_cycles": 500},
            injection_scale=0.5,
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_family_changes_both_fingerprints(self):
        plain = RunSpec(benchmark="D36_8", switch_count=9)
        family = RunSpec(
            benchmark="D36_8",
            switch_count=9,
            topology_family="torus",
            family_params={"rows": 3, "cols": 3},
        )
        assert family.fingerprint() != plain.fingerprint()
        assert family.synthesis_fingerprint() != plain.synthesis_fingerprint()

    def test_backend_flips_to_family_automatically(self):
        spec = RunSpec(
            benchmark="D36_8",
            switch_count=9,
            topology_family="torus",
            family_params={"rows": 3, "cols": 3},
        )
        assert spec.synthesis_backend == "family"

    def test_family_params_without_family_rejected(self):
        with pytest.raises(PlanError, match="family_params"):
            RunSpec(
                benchmark="D36_8", switch_count=9, family_params={"rows": 3}
            )

    def test_family_backend_without_family_rejected(self):
        with pytest.raises(PlanError, match="topology_family"):
            RunSpec(benchmark="D36_8", switch_count=9, synthesis_backend="family")

    def test_grid_entries_expand_family_fields(self):
        plan = ExperimentPlan.from_dict(
            {
                "name": "family-grid",
                "runs": [
                    {
                        "benchmark": "uniform_c10_f2",
                        "switch_counts": [5],
                        "topology_family": "fat_tree",
                        "family_params": {"k": 2},
                    }
                ],
            }
        )
        specs = plan.all_specs()
        assert len(specs) == 1
        assert specs[0].topology_family == "fat_tree"
        assert specs[0].family_params == {"k": 2}

    def test_execute_family_spec_end_to_end(self):
        result = execute_spec(
            RunSpec(
                benchmark="uniform_c10_f2",
                switch_count=5,
                topology_family="fat_tree",
                family_params={"k": 2},
                injection_scale=0.5,
                sim_cycles=400,
                traffic_scenario="trace",
                scenario_params={"trace_cycles": 400},
            )
        )
        assert result.simulation["scenario_params"] == {"trace_cycles": 400}
        assert result.simulation["variants"]["removal"]["packets_delivered"] >= 0


class TestScaleReport:
    def test_registered(self):
        assert "scale" in report_types

    def test_specs_follow_points(self):
        report = report_types.get("scale")
        specs = report.specs({"family": "fat_tree", "points": [{"k": 2}, {"k": 4}]})
        assert [spec.switch_count for spec in specs] == [5, 20]
        assert all(spec.topology_family == "fat_tree" for spec in specs)
        assert [spec.benchmark for spec in specs] == [
            "uniform_c10_f2",
            "uniform_c40_f2",
        ]

    def test_missing_family_rejected(self):
        with pytest.raises(PlanError, match="family"):
            report_types.get("scale").specs({})

    def test_unknown_family_without_points_rejected(self):
        with pytest.raises(PlanError, match="points"):
            report_types.get("scale").specs({"family": "hypercube"})

    def test_default_points_cover_every_family(self):
        report = report_types.get("scale")
        for family in ("ring", "mesh", "torus", "fat_tree", "clos", "vl2", "dragonfly"):
            assert family in DEFAULT_SCALE_POINTS
            assert len(report.specs({"family": family})) >= 3

    def test_render_produces_curves(self):
        document = run_report(
            "scale",
            {
                "family": "torus",
                "points": [{"rows": 3, "cols": 3}],
                "injection_scale": 0.5,
                "sim_cycles": 400,
            },
        )
        assert document["family"] == "torus"
        assert document["sizes"] == [9]
        assert len(document["removal_runtime_s"]) == 1
        for variant in ("unprotected", "removal", "ordering"):
            curves = document["variants"][variant]
            assert len(curves["average_latency"]) == 1
            assert isinstance(curves["saturated"][0], bool)
