"""End-to-end tests for the experiment Runner and the artifact cache flow."""

import json

import pytest

from repro.api.registry import synthesis_backends
from repro.api.reports import run_report
from repro.api.result import RunResult
from repro.api.runner import DESIGN_KIND, RESULT_KIND, Runner, run_plan
from repro.api.spec import ExperimentPlan, ReportRequest, RunSpec


@pytest.fixture
def counting_backend(monkeypatch):
    """Replace the 'custom' synthesis backend with a call-counting wrapper."""
    real = synthesis_backends.get("custom")
    calls = []

    def wrapper(traffic, config):
        calls.append((traffic.name, config.n_switches))
        return real(traffic, config)

    monkeypatch.setitem(synthesis_backends._entries, "custom", wrapper)
    return calls


class TestRunSpecExecution:
    def test_run_spec_produces_sane_record(self):
        result = Runner().run_spec(RunSpec(benchmark="D36_8", switch_count=10))
        assert result.benchmark == "D36_8"
        assert result.switch_count == 10
        assert result.removal_extra_vcs < result.ordering_extra_vcs
        assert result.removal_power_mw <= result.ordering_power_mw
        assert result.cache_hit is False

    def test_result_json_round_trip_is_lossless(self):
        result = Runner().run_spec(RunSpec(benchmark="D26_media", switch_count=8))
        clone = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result
        assert clone.as_row() == result.as_row()

    def test_matches_legacy_compare_methods(self):
        from repro.analysis.experiments import compare_methods

        comparison = compare_methods("D36_8", 14)
        result = Runner().run_spec(RunSpec(benchmark="D36_8", switch_count=14))
        assert result.removal_extra_vcs == comparison.removal_extra_vcs
        assert result.ordering_extra_vcs == comparison.ordering_extra_vcs
        assert result.removal_power_mw == comparison.removal_power.total_power_mw
        assert result.ordering_area_mm2 == comparison.ordering_area.total_area_mm2
        assert result.vc_reduction_percent == comparison.vc_reduction_percent
        assert result.normalised_ordering_power == comparison.normalised_ordering_power


class TestArtifactCacheFlow:
    def test_second_run_hits_cache_and_skips_synthesis(self, tmp_path, counting_backend):
        spec = RunSpec(benchmark="D26_media", switch_count=8)
        runner = Runner(cache_dir=tmp_path / "cache")

        first = runner.run_spec(spec)
        assert first.cache_hit is False
        assert counting_backend == [("D26_media", 8)]

        second = runner.run_spec(spec)
        assert second.cache_hit is True
        # The whole pipeline was skipped: no re-synthesis happened.
        assert counting_backend == [("D26_media", 8)]
        assert second.to_dict() == first.to_dict()

    def test_design_reused_across_engines_and_strategies(self, tmp_path, counting_backend):
        runner = Runner(cache_dir=tmp_path / "cache")
        runner.run_spec(RunSpec(benchmark="D36_8", switch_count=14))
        assert len(counting_backend) == 1

        # Different engine + strategy: result cache misses, but the
        # synthesized design is served from the cache.
        varied = runner.run_spec(
            RunSpec(
                benchmark="D36_8",
                switch_count=14,
                engine="rebuild",
                ordering_strategy="layered",
            )
        )
        assert varied.cache_hit is False
        assert len(counting_backend) == 1  # still one synthesis
        assert runner.cache.entry_count(DESIGN_KIND) == 1
        assert runner.cache.entry_count(RESULT_KIND) == 2

    def test_cached_design_reload_is_result_faithful(self, tmp_path):
        """A design served from the cache must yield the exact numbers a
        fresh synthesis yields (route order survives serialization)."""
        spec = RunSpec(benchmark="D36_8", switch_count=14, engine="rebuild")
        runner = Runner(cache_dir=tmp_path / "cache")
        runner.run_spec(RunSpec(benchmark="D36_8", switch_count=14))  # seeds design cache
        via_cache = runner.run_spec(spec).to_dict()
        fresh = Runner().run_spec(spec).to_dict()
        via_cache.pop("removal_runtime_s")
        fresh.pop("removal_runtime_s")
        assert via_cache == fresh

    def test_stale_result_schema_is_recomputed_not_raised(self, tmp_path, counting_backend):
        spec = RunSpec(benchmark="D26_media", switch_count=8)
        runner = Runner(cache_dir=tmp_path / "cache")
        first = runner.run_spec(spec)
        # Corrupt the cached record with a future schema version.
        document = runner.cache.get(RESULT_KIND, spec.fingerprint())
        document["format_version"] = 99
        runner.cache.put(RESULT_KIND, spec.fingerprint(), document)

        again = runner.run_spec(spec)
        assert again.cache_hit is False  # recomputed, not crashed
        assert again.to_dict()["format_version"] != 99
        # ...and the bad entry was overwritten with a good one.
        assert runner.run_spec(spec).cache_hit is True

    def test_malformed_design_document_is_recomputed(self, tmp_path, counting_backend):
        spec = RunSpec(benchmark="D26_media", switch_count=8)
        runner = Runner(cache_dir=tmp_path / "cache")
        runner.run_spec(spec)
        runner.cache.put(DESIGN_KIND, spec.synthesis_fingerprint(), {"junk": True})

        # Result cache misses for the rebuild variant; the broken design
        # document must fall back to fresh synthesis.
        varied = runner.run_spec(RunSpec(benchmark="D26_media", switch_count=8, engine="rebuild"))
        assert varied.cache_hit is False
        assert len(counting_backend) == 2

    def test_cache_dir_tilde_is_expanded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        from repro.api.cache import ArtifactCache

        cache = ArtifactCache("~/noc-cache")
        cache.put("result", "ab" + "0" * 62, {})
        assert (tmp_path / "noc-cache" / "result").is_dir()
        assert not (tmp_path / "~").exists()

    def test_no_cache_dir_never_writes(self, tmp_path, counting_backend):
        runner = Runner()
        spec = RunSpec(benchmark="D26_media", switch_count=8)
        runner.run_spec(spec)
        runner.run_spec(spec)
        assert len(counting_backend) == 2  # every run synthesizes
        assert list(tmp_path.iterdir()) == []


class TestPlanExecution:
    def test_plan_runs_in_spec_order(self, tmp_path):
        plan = ExperimentPlan.from_grid("order", "D26_media", [6, 9])
        outcome = Runner(cache_dir=tmp_path).run(plan)
        assert [r.switch_count for r in outcome.results] == [6, 9]
        assert outcome.cache_hits == 0
        again = Runner(cache_dir=tmp_path).run(plan)
        assert again.cache_hits == 2

    def test_run_plan_accepts_path(self, tmp_path):
        path = ExperimentPlan.from_grid("from-disk", "D26_media", [6]).save(
            tmp_path / "plan.json"
        )
        outcome = run_plan(path)
        assert len(outcome.results) == 1

    def test_report_rendering_matches_legacy_series(self):
        """The report pipeline must reproduce the legacy figure dictionary
        byte-for-byte (same keys, same values, same order)."""
        from repro.analysis.experiments import sweep_switch_counts

        comparisons = sweep_switch_counts("D26_media", [6, 9])
        legacy = {
            "benchmark": "D26_media",
            "switch_counts": [6, 9],
            "resource_ordering_vcs": [c.ordering_extra_vcs for c in comparisons],
            "deadlock_removal_vcs": [c.removal_extra_vcs for c in comparisons],
        }
        data = run_report("figure8", {"switch_counts": [6, 9]})
        assert json.dumps(data) == json.dumps(legacy)

    def test_plan_result_document(self, tmp_path):
        plan = ExperimentPlan(
            name="doc",
            specs=[RunSpec(benchmark="D26_media", switch_count=6)],
            reports=[ReportRequest(type="figure8", params={"switch_counts": [6]})],
        )
        outcome = Runner(cache_dir=tmp_path).run(plan)
        document = outcome.to_dict()
        assert document["plan"]["name"] == "doc"
        assert len(document["results"]) == 1
        assert document["reports"][0]["type"] == "figure8"
        assert document["reports"][0]["data"]["switch_counts"] == [6]

    def test_parallel_plan_matches_serial(self, tmp_path):
        plan = ExperimentPlan.from_grid("par", "D26_media", [6, 8, 9])
        serial = Runner().run(plan)
        parallel = Runner(jobs=2).run(plan)

        def strip(result):
            document = result.to_dict()
            document.pop("removal_runtime_s")  # wall-clock is run-dependent
            return document

        assert [strip(r) for r in serial.results] == [strip(r) for r in parallel.results]
