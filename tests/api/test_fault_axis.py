"""Spec/result plumbing of the fault-injection axis.

The ``fault_schedule`` field rides the same default-elision rule as every
other simulation-axis field: absent (``None``) it contributes nothing to
the spec's content address, so every record cached before the axis existed
is still a hit; present, two specs that differ only in their schedule get
different addresses and never collide in the artifact cache.
"""

from __future__ import annotations

import pytest

from repro.api.result import RunResult
from repro.api.spec import RunSpec, expand_run_entry
from repro.errors import PlanError

SCHEDULE = {
    "events": [
        {"cycle": 50, "action": "fail_link", "link": {"src": "a", "dst": "b"}}
    ]
}
RANDOM_REQUEST = {"random": {"link_failures": 2, "start_cycle": 10, "end_cycle": 90}}


class TestFaultScheduleField:
    def test_default_is_elided_from_fingerprint(self):
        plain = RunSpec(benchmark="D36_8", switch_count=14, injection_scale=1.0)
        explicit_none = RunSpec(
            benchmark="D36_8",
            switch_count=14,
            injection_scale=1.0,
            fault_schedule=None,
        )
        assert "fault_schedule" not in plain.to_dict()
        assert plain.fingerprint() == explicit_none.fingerprint()

    def test_schedule_changes_the_fingerprint(self):
        plain = RunSpec(benchmark="D36_8", switch_count=14, injection_scale=1.0)
        faulted = RunSpec(
            benchmark="D36_8",
            switch_count=14,
            injection_scale=1.0,
            fault_schedule=SCHEDULE,
        )
        assert faulted.fingerprint() != plain.fingerprint()
        assert faulted.to_dict()["fault_schedule"] == SCHEDULE

    def test_different_schedules_get_different_addresses(self):
        def spec(schedule):
            return RunSpec(
                benchmark="D36_8",
                switch_count=14,
                injection_scale=1.0,
                fault_schedule=schedule,
            )

        assert spec(SCHEDULE).fingerprint() != spec(RANDOM_REQUEST).fingerprint()

    def test_round_trip(self):
        spec = RunSpec(
            benchmark="D36_8",
            switch_count=14,
            injection_scale=1.0,
            fault_schedule=RANDOM_REQUEST,
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("value", ["faults", 7, ["fail_link"], {"neither": 1}])
    def test_invalid_values_rejected(self, value):
        with pytest.raises(PlanError):
            RunSpec(
                benchmark="D36_8",
                switch_count=14,
                injection_scale=1.0,
                fault_schedule=value,
            )

    def test_expand_run_entry_threads_the_schedule(self):
        specs = expand_run_entry(
            {
                "benchmark": "D36_8",
                "switch_counts": [10, 14],
                "injection_scale": 1.0,
                "fault_schedule": RANDOM_REQUEST,
            }
        )
        assert len(specs) == 2
        assert all(spec.fault_schedule == RANDOM_REQUEST for spec in specs)


def _result(**overrides) -> RunResult:
    base = dict(
        spec=RunSpec(benchmark="D36_8", switch_count=14),
        removal_extra_vcs=1,
        ordering_extra_vcs=5,
        removal_iterations=2,
        initial_cycle_count=3,
        removal_runtime_s=0.1,
        unprotected_power_mw=10.0,
        removal_power_mw=11.0,
        ordering_power_mw=12.0,
        unprotected_area_mm2=1.0,
        removal_area_mm2=1.1,
        ordering_area_mm2=1.2,
    )
    base.update(overrides)
    return RunResult(**base)


class TestRunResultAttempts:
    def test_default_single_attempt_is_elided(self):
        result = _result()
        assert result.attempts == 1
        assert "attempts" not in result.to_dict()
        assert RunResult.from_dict(result.to_dict()).attempts == 1

    def test_retried_record_round_trips(self):
        result = _result(attempts=3)
        document = result.to_dict()
        assert document["attempts"] == 3
        assert RunResult.from_dict(document).attempts == 3

    def test_attempts_excluded_from_equality(self):
        # A record that needed a retry is still the same record.
        assert _result(attempts=2) == _result(attempts=1)
