"""CLI tests for the `run` subcommand and the new removal-engine flags."""

import json

import pytest

from repro.cli import main
from repro.examples_data.paper_ring import paper_ring_design
from repro.model.serialization import save_design


@pytest.fixture
def ring_file(tmp_path):
    return save_design(paper_ring_design(), tmp_path / "ring.json")


def _write_plan(tmp_path, document):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(document))
    return path


class TestRunSubcommand:
    def test_run_plan_prints_rows(self, tmp_path, capsys):
        plan = _write_plan(
            tmp_path,
            {"name": "rows", "runs": [{"benchmark": "D26_media", "switch_counts": [6, 9]}]},
        )
        assert main(["run", str(plan), "--cache-dir", str(tmp_path / "cache")]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["switch_count"] for row in rows] == [6, 9]
        assert all(row["benchmark"] == "D26_media" for row in rows)

    def test_second_run_is_served_from_cache(self, tmp_path, capsys):
        plan = _write_plan(
            tmp_path,
            {"name": "cached", "runs": [{"benchmark": "D26_media", "switch_count": 6}]},
        )
        cache = str(tmp_path / "cache")
        assert main(["run", str(plan), "--cache-dir", cache]) == 0
        first = capsys.readouterr()
        assert "0 served from cache" in first.err
        assert main(["run", str(plan), "--cache-dir", cache]) == 0
        second = capsys.readouterr()
        assert "1 served from cache" in second.err
        assert first.out == second.out

    def test_run_figure_report_matches_figures_subcommand(
        self, tmp_path, capsys, monkeypatch
    ):
        """`noc-deadlock run <plan>` must print byte-identical JSON to the
        legacy `figures` subcommand for the same report."""
        import repro.api.reports as reports

        monkeypatch.setattr(reports, "FIGURE8_SWITCH_COUNTS", [6, 9])
        assert main(["figures", "8"]) == 0
        legacy_out = capsys.readouterr().out

        plan = _write_plan(tmp_path, {"name": "fig8", "reports": ["figure8"]})
        assert main(["run", str(plan), "--no-cache"]) == 0
        assert capsys.readouterr().out == legacy_out

    def test_run_writes_output_document(self, tmp_path, capsys):
        plan = _write_plan(
            tmp_path,
            {
                "name": "out",
                "runs": [{"benchmark": "D26_media", "switch_count": 6}],
                "reports": [{"type": "figure8", "switch_counts": [6]}],
            },
        )
        out_path = tmp_path / "results.json"
        assert main(["run", str(plan), "--no-cache", "-o", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["plan"]["name"] == "out"
        assert len(document["results"]) == 1
        assert document["reports"][0]["type"] == "figure8"

    def test_missing_plan_is_a_clean_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "none.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_plan_is_a_clean_error(self, tmp_path, capsys):
        plan = tmp_path / "bad.json"
        plan.write_text("{not json")
        assert main(["run", str(plan)]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_benchmark_in_plan_is_a_clean_error(self, tmp_path, capsys):
        plan = _write_plan(
            tmp_path, {"name": "x", "runs": [{"benchmark": "D99", "switch_count": 6}]}
        )
        assert main(["run", str(plan), "--no-cache"]) == 2
        assert "error" in capsys.readouterr().err

    def test_checked_in_ci_smoke_plan_loads(self):
        from pathlib import Path

        from repro.api.spec import ExperimentPlan

        plans_dir = Path(__file__).resolve().parents[2] / "plans"
        plan = ExperimentPlan.load(plans_dir / "ci_smoke.json")
        assert plan.name == "ci-smoke"
        assert len(plan.all_specs()) == 5

    def test_checked_in_paper_figures_plan_loads(self):
        from pathlib import Path

        from repro.api.spec import ExperimentPlan

        plans_dir = Path(__file__).resolve().parents[2] / "plans"
        plan = ExperimentPlan.load(plans_dir / "paper_figures.json")
        names = [request.type for request in plan.reports]
        assert names == ["figure8", "figure9", "figure10", "area", "overhead"]
        # Figure 10 / area / overhead share their six specs.
        assert len(plan.all_specs()) == len(set(s.fingerprint() for s in plan.all_specs()))


class TestRemoveEngineFlags:
    def test_remove_with_rebuild_engine(self, ring_file, capsys):
        assert main(["remove", str(ring_file), "--engine", "rebuild"]) == 0
        assert "virtual channels added" in capsys.readouterr().out

    def test_remove_with_cross_check(self, ring_file, capsys):
        assert main(["remove", str(ring_file), "--engine", "incremental", "--cross-check"]) == 0
        assert "virtual channels added" in capsys.readouterr().out

    def test_engines_produce_identical_summaries(self, ring_file, capsys):
        assert main(["remove", str(ring_file), "--engine", "incremental"]) == 0
        incremental = capsys.readouterr().out
        assert main(["remove", str(ring_file), "--engine", "rebuild"]) == 0
        rebuild = capsys.readouterr().out

        def stable(text):
            return [line for line in text.splitlines() if "runtime" not in line]

        assert stable(incremental) == stable(rebuild)

    def test_corrupt_design_json_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{definitely not json")
        assert main(["analyze", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error" in err and "Traceback" not in err
