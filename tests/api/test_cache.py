"""Tests for the content-addressed artifact cache (repro.api.cache)."""

import json

from repro.api.cache import ArtifactCache

KEY = "ab" + "0" * 62
OTHER_KEY = "cd" + "1" * 62


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        assert cache.get("result", KEY) is None
        assert cache.misses == 1

        cache.put("result", KEY, {"x": 1})
        assert cache.get("result", KEY) == {"x": 1}
        assert cache.hits == 1

    def test_kinds_are_namespaced(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("result", KEY, {"kind": "result"})
        assert cache.get("design", KEY) is None
        assert cache.get("result", KEY) == {"kind": "result"}

    def test_sharded_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("design", KEY, {})
        assert path == tmp_path / "design" / "ab" / f"{KEY}.json"
        assert path.is_file()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("result", KEY, {"x": 1})
        path.write_text("{truncated")
        assert cache.get("result", KEY) is None

    def test_overwrite_replaces_document(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("result", KEY, {"version": 1})
        cache.put("result", KEY, {"version": 2})
        assert cache.get("result", KEY) == {"version": 2}

    def test_preserves_key_order(self, tmp_path):
        # Design documents encode route insertion order in JSON object
        # order; the cache must not re-sort them.
        cache = ArtifactCache(tmp_path)
        document = {"routes": {"z_flow": 1, "a_flow": 2, "m_flow": 3}}
        path = cache.put("design", KEY, document)
        loaded = json.loads(path.read_text())
        assert list(loaded["routes"]) == ["z_flow", "a_flow", "m_flow"]

    def test_has_does_not_touch_counters(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert not cache.has("result", KEY)
        cache.put("result", KEY, {})
        assert cache.has("result", KEY)
        assert cache.hits == 0 and cache.misses == 0

    def test_entry_count_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("result", KEY, {})
        cache.put("design", OTHER_KEY, {})
        assert cache.entry_count() == 2
        assert cache.entry_count("design") == 1
        assert cache.clear() == 2
        assert cache.entry_count() == 0
