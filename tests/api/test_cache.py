"""Tests for the content-addressed artifact cache (repro.api.cache)."""

import json

from repro.api.cache import ArtifactCache

KEY = "ab" + "0" * 62
OTHER_KEY = "cd" + "1" * 62


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        assert cache.get("result", KEY) is None
        assert cache.misses == 1

        cache.put("result", KEY, {"x": 1})
        assert cache.get("result", KEY) == {"x": 1}
        assert cache.hits == 1

    def test_kinds_are_namespaced(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("result", KEY, {"kind": "result"})
        assert cache.get("design", KEY) is None
        assert cache.get("result", KEY) == {"kind": "result"}

    def test_sharded_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("design", KEY, {})
        assert path == tmp_path / "design" / "ab" / f"{KEY}.json"
        assert path.is_file()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("result", KEY, {"x": 1})
        path.write_text("{truncated")
        assert cache.get("result", KEY) is None

    def test_overwrite_replaces_document(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("result", KEY, {"version": 1})
        cache.put("result", KEY, {"version": 2})
        assert cache.get("result", KEY) == {"version": 2}

    def test_preserves_key_order(self, tmp_path):
        # Design documents encode route insertion order in JSON object
        # order; the cache must not re-sort them.
        cache = ArtifactCache(tmp_path)
        document = {"routes": {"z_flow": 1, "a_flow": 2, "m_flow": 3}}
        path = cache.put("design", KEY, document)
        loaded = json.loads(path.read_text())
        assert list(loaded["routes"]) == ["z_flow", "a_flow", "m_flow"]

    def test_has_does_not_touch_counters(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert not cache.has("result", KEY)
        cache.put("result", KEY, {})
        assert cache.has("result", KEY)
        assert cache.hits == 0 and cache.misses == 0

    def test_entry_count_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("result", KEY, {})
        cache.put("design", OTHER_KEY, {})
        assert cache.entry_count() == 2
        assert cache.entry_count("design") == 1
        assert cache.clear() == 2
        assert cache.entry_count() == 0


class TestTempFileSweep:
    """Orphaned ``.tmp`` files from killed workers must not leak forever."""

    @staticmethod
    def _orphan(root, *, age_seconds: float = 0.0) -> "object":
        import os

        entry_dir = root / "result" / KEY[:2]
        entry_dir.mkdir(parents=True, exist_ok=True)
        tmp = entry_dir / f".{KEY[:8]}.deadbeef.tmp"
        tmp.write_text('{"half": ')
        if age_seconds:
            past = tmp.stat().st_mtime - age_seconds
            os.utime(tmp, (past, past))
        return tmp

    def test_clear_removes_temp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("result", KEY, {})
        tmp = self._orphan(tmp_path)
        assert cache.clear() == 2
        assert not tmp.exists()

    def test_construction_sweeps_stale_temp_files(self, tmp_path):
        stale = self._orphan(tmp_path, age_seconds=7200.0)
        cache = ArtifactCache(tmp_path)
        assert not stale.exists()
        # The cache itself is untouched by the sweep.
        cache.put("result", KEY, {"x": 1})
        assert ArtifactCache(tmp_path).get("result", KEY) == {"x": 1}

    def test_construction_sweeps_once_per_process(self, tmp_path):
        # Pool workers build one cache per work item; only the first
        # construction over a root may pay the recursive tree walk.
        ArtifactCache(tmp_path)
        stale = self._orphan(tmp_path, age_seconds=7200.0)
        ArtifactCache(tmp_path)
        assert stale.exists()

    def test_construction_keeps_fresh_temp_files(self, tmp_path):
        # A fresh temp file may belong to a live concurrent writer.
        fresh = self._orphan(tmp_path)
        ArtifactCache(tmp_path)
        assert fresh.exists()

    def test_sweep_temp_files_returns_removed_count(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        self._orphan(tmp_path, age_seconds=7200.0)
        assert cache.sweep_temp_files(min_age_seconds=3600.0) == 1
        assert cache.sweep_temp_files(min_age_seconds=3600.0) == 0

    def test_missing_root_sweep_is_noop(self, tmp_path):
        cache = ArtifactCache(tmp_path / "never-created")
        assert cache.sweep_temp_files() == 0

    def test_put_survives_concurrent_clear_of_its_temp_file(self, tmp_path, monkeypatch):
        # clear() unconditionally unlinks .tmp files; a writer losing that
        # race must retry instead of crashing mid-put.
        import os as os_module

        cache = ArtifactCache(tmp_path)
        real_replace = os_module.replace
        raised = {"count": 0}

        def flaky_replace(src, dst):
            if raised["count"] == 0:
                raised["count"] += 1
                os_module.unlink(src)  # what a concurrent clear() does
                raise FileNotFoundError(src)
            return real_replace(src, dst)

        monkeypatch.setattr("repro.api.cache.os.replace", flaky_replace)
        cache.put("result", KEY, {"x": 1})
        assert cache.get("result", KEY) == {"x": 1}
        assert raised["count"] == 1


class TestQuarantine:
    def test_truncated_record_is_quarantined_and_recomputable(self, tmp_path):
        # The regression the quarantine exists for: a worker killed
        # mid-write (or a bad disk) leaves a truncated result record; the
        # next reader must treat it as a miss, move the evidence aside and
        # let the recompute land on a clean path.
        cache = ArtifactCache(tmp_path)
        path = cache.put("result", KEY, {"x": 1})
        path.write_text('{"x": 1')  # truncated JSON
        assert cache.get("result", KEY) is None
        assert cache.misses == 1
        assert cache.quarantined == 1
        assert not path.exists()
        quarantined = tmp_path / "corrupt" / path.name
        assert quarantined.read_text() == '{"x": 1'
        # The recompute writes and reads back normally.
        cache.put("result", KEY, {"x": 2})
        assert cache.get("result", KEY) == {"x": 2}

    def test_corrupt_design_record_is_quarantined_too(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("design", KEY, {"routes": {}})
        path.write_text("not json at all")
        assert cache.get("design", KEY) is None
        assert cache.quarantined == 1
        assert (tmp_path / "corrupt" / path.name).exists()

    def test_plain_miss_is_not_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("result", KEY) is None
        assert cache.quarantined == 0
        assert not (tmp_path / "corrupt").exists()

    def test_unreadable_entry_is_quarantined(self, tmp_path, monkeypatch):
        # An I/O error that is not FileNotFoundError (EIO, permission loss)
        # counts as corrupt, not as absent.
        from pathlib import Path

        cache = ArtifactCache(tmp_path)
        path = cache.put("result", KEY, {"x": 1})
        real_read_text = Path.read_text

        def failing_read_text(self, *args, **kwargs):
            if self == path:
                raise OSError("I/O error")
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", failing_read_text)
        assert cache.get("result", KEY) is None
        assert cache.misses == 1
        assert cache.quarantined == 1

    def test_failed_quarantine_move_still_misses(self, tmp_path, monkeypatch):
        import os as os_module

        cache = ArtifactCache(tmp_path)
        path = cache.put("result", KEY, {"x": 1})
        path.write_text("{bad")

        def failing_replace(src, dst):
            raise OSError("read-only filesystem")

        monkeypatch.setattr("repro.api.cache.os.replace", failing_replace)
        assert cache.get("result", KEY) is None
        assert cache.quarantined == 0
