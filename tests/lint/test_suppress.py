"""Inline ``# noc-lint: disable=`` directives: same-line-only semantics."""

from repro.lint.findings import Finding
from repro.lint.suppress import is_suppressed, split_suppressed, suppressed_rules


def _finding(line, rule="det-wallclock"):
    return Finding(path="src/a.py", line=line, rule=rule, message="m")


class TestDirectiveParsing:
    def test_single_rule(self):
        assert suppressed_rules("x = 1  # noc-lint: disable=det-wallclock") == {
            "det-wallclock"
        }

    def test_multiple_rules_and_spacing(self):
        line = "x = 1  # noc-lint: disable=det-wallclock, registry-discipline"
        assert suppressed_rules(line) == {"det-wallclock", "registry-discipline"}

    def test_justification_text_after_directive_is_ignored(self):
        line = "x = 1  # noc-lint: disable=det-wallclock - mtime age math"
        assert suppressed_rules(line) == {"det-wallclock"}

    def test_plain_comment_is_not_a_directive(self):
        assert suppressed_rules("x = 1  # talks about noc-lint only") == frozenset()


class TestSuppression:
    def test_suppresses_matching_rule_on_same_line(self):
        lines = ["x = time.time()  # noc-lint: disable=det-wallclock"]
        assert is_suppressed(_finding(1), lines)

    def test_wildcard_all_suppresses_any_rule(self):
        lines = ["x = 1  # noc-lint: disable=all"]
        assert is_suppressed(_finding(1, rule="anything"), lines)

    def test_directive_on_another_line_does_not_suppress(self):
        lines = ["# noc-lint: disable=det-wallclock", "x = time.time()"]
        assert not is_suppressed(_finding(2), lines)

    def test_other_rule_ids_do_not_suppress(self):
        lines = ["x = 1  # noc-lint: disable=det-set-order"]
        assert not is_suppressed(_finding(1), lines)

    def test_split_partitions_kept_and_dropped(self):
        lines = [
            "a = time.time()",
            "b = time.time()  # noc-lint: disable=det-wallclock",
        ]
        kept, dropped = split_suppressed([_finding(1), _finding(2)], lines)
        assert [f.line for f in kept] == [1]
        assert [f.line for f in dropped] == [2]
