"""The Finding schema and the shared structured-warning payload."""

import json
import re

from repro.lint.findings import (
    FINDING_KEYS,
    FINDINGS_FORMAT_VERSION,
    Finding,
    structured_warning,
)


class TestFinding:
    def test_dict_round_trip(self):
        finding = Finding(path="src/a.py", line=3, rule="det-wallclock", message="m", col=7)
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_to_dict_uses_exactly_the_schema_keys(self):
        finding = Finding(path="src/a.py", line=3, rule="r", message="m")
        assert tuple(sorted(finding.to_dict())) == tuple(sorted(FINDING_KEYS))

    def test_render_is_path_line_col_rule_message(self):
        finding = Finding(path="src/a.py", line=3, rule="det-wallclock", message="boom", col=7)
        assert finding.render() == "src/a.py:3:7: [det-wallclock] boom"

    def test_orders_by_path_then_line(self):
        unsorted = [
            Finding(path="src/b.py", line=1, rule="r", message="m"),
            Finding(path="src/a.py", line=9, rule="r", message="m"),
            Finding(path="src/a.py", line=2, rule="r", message="m"),
        ]
        ordered = sorted(unsorted)
        assert [(f.path, f.line) for f in ordered] == [
            ("src/a.py", 2),
            ("src/a.py", 9),
            ("src/b.py", 1),
        ]

    def test_baseline_key_ignores_line_and_col(self):
        a = Finding(path="src/a.py", line=3, rule="r", message="m", col=1)
        b = Finding(path="src/a.py", line=99, rule="r", message="m", col=5)
        assert a.baseline_key() == b.baseline_key()


class TestStructuredWarning:
    def test_payload_parses_and_matches_finding_schema(self):
        text = structured_warning("process-boundary", "work is not picklable")
        match = re.search(r"\[noc-lint (\{.*\})\]$", text)
        assert match, text
        payload = json.loads(match.group(1))
        assert set(payload) == set(FINDING_KEYS)
        assert payload["rule"] == "process-boundary"
        assert payload["message"] == "work is not picklable"

    def test_prose_is_preserved_verbatim_as_prefix(self):
        text = structured_warning("r", "human readable part")
        assert text.startswith("human readable part [noc-lint ")

    def test_format_version_is_stable(self):
        assert FINDINGS_FORMAT_VERSION == 1
