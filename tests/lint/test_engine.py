"""Lint orchestration: file collection, parse errors, report schema."""

from repro.lint.engine import PARSE_ERROR_RULE, lint_paths
from repro.lint.findings import FINDING_KEYS


class TestFileCollection:
    def test_counts_checked_files(self, lint_project):
        report = lint_project(
            {"src/a.py": "x = 1\n", "src/pkg/b.py": "y = 2\n"},
            rules=["det-wallclock"],
        )
        assert report.checked_files == 2
        assert report.ok

    def test_pycache_is_never_descended_into(self, lint_project):
        report = lint_project(
            {"src/__pycache__/broken.py": "def broken(:\n", "src/ok.py": "x = 1\n"},
            rules=["det-wallclock"],
        )
        assert report.checked_files == 1
        assert report.ok


class TestParseErrors:
    def test_syntax_error_becomes_a_parse_error_finding(self, lint_project):
        report = lint_project({"src/broken.py": "def broken(:\n"}, rules=["det-wallclock"])
        assert not report.ok
        (finding,) = report.new_findings
        assert finding.rule == PARSE_ERROR_RULE
        assert finding.path == "src/broken.py"
        assert "could not be parsed" in finding.message

    def test_parse_error_does_not_abort_other_files(self, lint_project):
        report = lint_project(
            {
                "src/broken.py": "def broken(:\n",
                "src/clock.py": "import time\nt = time.time()\n",
            },
            rules=["det-wallclock"],
        )
        assert sorted(f.rule for f in report.new_findings) == [
            "det-wallclock",
            PARSE_ERROR_RULE,
        ]


class TestReportSchema:
    def test_json_document_shape(self, lint_project):
        report = lint_project(
            {"src/clock.py": "import time\nt = time.time()\n"},
            rules=["det-wallclock"],
        )
        document = report.to_dict()
        assert set(document) == {
            "format_version",
            "checked_files",
            "ok",
            "baseline",
            "new_findings",
            "grandfathered",
            "suppressed",
        }
        assert document["format_version"] == 1
        assert document["ok"] is False
        (entry,) = document["new_findings"]
        assert set(entry) == set(FINDING_KEYS)

    def test_findings_come_back_sorted(self, lint_project):
        report = lint_project(
            {
                "src/z.py": "import time\nt = time.time()\n",
                "src/a.py": "import time\nt = time.time()\n",
            },
            rules=["det-wallclock"],
        )
        assert [f.path for f in report.new_findings] == ["src/a.py", "src/z.py"]

    def test_unknown_rule_id_fails_loudly(self, tmp_path):
        import pytest

        from repro.errors import ReproError

        (tmp_path / "a.py").write_text("x = 1\n")
        with pytest.raises(ReproError):
            lint_paths([tmp_path], root=tmp_path, rules=["no-such-rule"])
