"""The ``noc-deadlock lint`` subcommand: formats, exit codes, baseline flags."""

import json
import textwrap

import pytest

from repro.cli import main


@pytest.fixture
def project(tmp_path, monkeypatch):
    """A minimal project with one det-wallclock finding; cwd moved into it."""
    src = tmp_path / "src"
    src.mkdir()
    (src / "stamp.py").write_text(
        textwrap.dedent(
            """
            import time

            def stamp():
                return time.time()
            """
        )
    )
    (src / "clean.py").write_text("x = 1\n")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestHumanOutput:
    def test_new_finding_fails_and_is_rendered(self, project, capsys):
        assert main(["lint", "src", "--no-baseline"]) == 1
        captured = capsys.readouterr()
        assert "src/stamp.py:5" in captured.out
        assert "[det-wallclock]" in captured.out
        assert "1 new finding(s)" in captured.err

    def test_clean_run_exits_zero(self, project, capsys):
        assert main(["lint", "src/clean.py", "--no-baseline"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().err

    def test_missing_baseline_file_is_an_empty_baseline(self, project):
        assert main(["lint", "src"]) == 1


class TestJsonOutput:
    def test_document_schema_and_exit_code(self, project, capsys):
        assert main(["lint", "src", "--format", "json", "--no-baseline"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["checked_files"] == 2
        (finding,) = document["new_findings"]
        assert finding["rule"] == "det-wallclock"
        assert finding["path"] == "src/stamp.py"

    def test_rules_flag_restricts_the_run(self, project, capsys):
        assert (
            main(
                [
                    "lint",
                    "src",
                    "--format",
                    "json",
                    "--no-baseline",
                    "--rules",
                    "det-set-order",
                ]
            )
            == 0
        )
        assert json.loads(capsys.readouterr().out)["ok"] is True


class TestBaselineFlags:
    def test_update_then_rerun_round_trips_to_green(self, project, capsys):
        assert main(["lint", "src", "--update-baseline"]) == 0
        assert "wrote 1 finding(s)" in capsys.readouterr().out
        assert main(["lint", "src"]) == 0
        captured = capsys.readouterr()
        assert "1 baselined" in captured.err

    def test_corrupt_baseline_is_a_clean_cli_error(self, project, capsys):
        (project / "lint-baseline.json").write_text("{nope")
        assert main(["lint", "src"]) == 2
        assert "error:" in capsys.readouterr().err
