"""Baseline persistence and the new-vs-grandfathered diff."""

import json

import pytest

from repro.lint.baseline import (
    BaselineError,
    diff_against_baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.findings import Finding


def _finding(line=1, rule="det-wallclock", path="src/a.py", message="m"):
    return Finding(path=path, line=line, rule=rule, message=message)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [_finding(3), _finding(9, rule="det-set-order")]
        save_baseline(path, findings)
        assert sorted(load_baseline(path)) == sorted(findings)

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_saved_document_is_sorted_and_versioned(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [_finding(9, path="src/b.py"), _finding(1, path="src/a.py")])
        document = json.loads(path.read_text())
        assert document["format_version"] == 1
        assert [entry["path"] for entry in document["findings"]] == [
            "src/a.py",
            "src/b.py",
        ]

    def test_unknown_format_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format_version": 99, "findings": []}))
        with pytest.raises(BaselineError, match="format version"):
            load_baseline(path)

    def test_non_object_document_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(["not", "a", "dict"]))
        with pytest.raises(BaselineError, match="'findings' list"):
            load_baseline(path)

    def test_unreadable_json_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(BaselineError, match="could not read"):
            load_baseline(path)


class TestDiff:
    def test_baselined_finding_is_grandfathered_even_after_line_shift(self):
        new, grandfathered = diff_against_baseline([_finding(line=42)], [_finding(line=3)])
        assert new == []
        assert [f.line for f in grandfathered] == [42]

    def test_unknown_finding_is_new(self):
        new, grandfathered = diff_against_baseline([_finding(rule="det-set-order")], [_finding()])
        assert [f.rule for f in new] == ["det-set-order"]
        assert grandfathered == []

    def test_multiset_semantics_second_occurrence_is_new(self):
        current = [_finding(line=1), _finding(line=2)]
        new, grandfathered = diff_against_baseline(current, [_finding()])
        assert len(grandfathered) == 1
        assert len(new) == 1


class TestRoundTripThroughEngine:
    def test_update_then_rerun_reports_zero_new(self, lint_project, tmp_path):
        files = {
            "src/clock.py": """
                import time

                def stamp():
                    return time.time()
                """
        }
        first = lint_project(files, rules=["det-wallclock"])
        assert len(first.new_findings) == 1

        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, first.findings)

        second = lint_project(files, rules=["det-wallclock"], baseline=baseline_path)
        assert second.ok
        assert second.new_findings == []
        assert len(second.grandfathered) == 1
