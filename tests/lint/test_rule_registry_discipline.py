"""Registry discipline: engines resolve by name, never by constructor."""


class TestRegistryDiscipline:
    def test_direct_engine_construction_is_flagged(self, lint_project):
        report = lint_project(
            {
                "src/repro/__init__.py": "",
                "src/repro/analysis/__init__.py": "",
                "src/repro/analysis/adhoc.py": """
                    from repro.perf.route_engine import IndexedRouter

                    def route_all(topology):
                        return IndexedRouter(topology)
                    """,
            },
            rules=["registry-discipline"],
        )
        (finding,) = report.new_findings
        assert "IndexedRouter" in finding.message
        assert "routing_engines" in finding.message

    def test_simulator_construction_is_flagged_too(self, lint_project):
        report = lint_project(
            {"src/adhoc.py": "sim = CompiledSimulator(design)\n"},
            rules=["registry-discipline"],
        )
        (finding,) = report.new_findings
        assert "simulation_engines" in finding.message

    def test_perf_package_is_the_engines_home(self, lint_project):
        report = lint_project(
            {
                "src/repro/__init__.py": "",
                "src/repro/perf/__init__.py": "",
                "src/repro/perf/fast.py": "router = IndexedRouter(topology)\n",
            },
            rules=["registry-discipline"],
        )
        assert report.ok

    def test_provider_modules_may_register_what_they_define(self, lint_project):
        report = lint_project(
            {
                "src/repro/__init__.py": "",
                "src/repro/simulation/__init__.py": "",
                "src/repro/simulation/simulator.py": "sim = Simulator(design)\n",
            },
            rules=["registry-discipline"],
        )
        assert report.ok

    def test_inline_suppression_with_justification_is_honoured(self, lint_project):
        report = lint_project(
            {
                "src/adhoc.py": (
                    "router = IndexedRouter(topology)"
                    "  # noc-lint: disable=registry-discipline - bench fixture\n"
                )
            },
            rules=["registry-discipline"],
        )
        assert report.ok
        assert len(report.suppressed) == 1
