"""Engine/test cross-referencing: every registered name appears in a test."""

_REGISTERING_SOURCE = """
    class _Registry:
        def register(self, name):
            def decorate(fn):
                return fn
            return decorate

    simulation_engines = _Registry()

    @simulation_engines.register("ghost-engine")
    def ghost(design):
        return design
    """


class TestEngineTestCoverage:
    def test_unreferenced_registration_is_flagged(self, lint_project):
        report = lint_project(
            {"src/engines.py": _REGISTERING_SOURCE},
            tests={"test_other.py": "def test_nothing():\n    assert 'legacy'\n"},
            rules=["engine-test-coverage"],
        )
        (finding,) = report.new_findings
        assert "'ghost-engine'" in finding.message
        assert finding.path == "src/engines.py"

    def test_any_test_string_reference_counts_as_coverage(self, lint_project):
        report = lint_project(
            {"src/engines.py": _REGISTERING_SOURCE},
            tests={
                "test_ghost.py": (
                    "def test_ghost():\n"
                    "    assert resolve('ghost-engine') is not None\n"
                )
            },
            rules=["engine-test-coverage"],
        )
        assert report.ok

    def test_name_via_module_constant_is_resolved(self, lint_project):
        source = _REGISTERING_SOURCE.replace(
            '@simulation_engines.register("ghost-engine")',
            'ENGINE_NAME = "phantom-engine"\n\n'
            "    @simulation_engines.register(ENGINE_NAME)",
        )
        report = lint_project(
            {"src/engines.py": source},
            tests={"test_other.py": "def test_nothing():\n    assert True\n"},
            rules=["engine-test-coverage"],
        )
        (finding,) = report.new_findings
        assert "'phantom-engine'" in finding.message

    def test_rule_is_quiet_without_a_test_tree(self, lint_project):
        report = lint_project(
            {"src/engines.py": _REGISTERING_SOURCE},
            rules=["engine-test-coverage"],
        )
        assert report.ok

    def test_unrelated_registries_are_ignored(self, lint_project):
        source = _REGISTERING_SOURCE.replace("simulation_engines", "plugin_hooks")
        report = lint_project(
            {"src/engines.py": source},
            tests={"test_other.py": "def test_nothing():\n    assert True\n"},
            rules=["engine-test-coverage"],
        )
        assert report.ok
