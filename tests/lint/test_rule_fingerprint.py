"""Fingerprint completeness: the cache-key-aliasing tripwire.

The last class is the PR's contract test: take the *real*
``repro.api.spec`` source, add a field, and prove the rule fails the
build — both for a field added in the class body (AST path) and for one
injected at runtime behind the AST's back (introspection path).
"""

import dataclasses
from pathlib import Path

from repro.lint.engine import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC_PATH = REPO_ROOT / "src" / "repro" / "api" / "spec.py"


class TestFixtureSpecs:
    def test_unfingerprinted_field_is_flagged(self, lint_project):
        report = lint_project(
            {
                "src/specmod.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class RunSpec:
                        benchmark: str = "x"
                        seed: int = 0
                        trace_label: str = ""

                        def to_dict(self):
                            return {"benchmark": self.benchmark, "seed": self.seed}

                        def fingerprint(self):
                            return str(self.to_dict())
                    """
            },
            rules=["fingerprint-completeness"],
        )
        (finding,) = report.new_findings
        assert "'trace_label'" in finding.message

    def test_elision_allowlist_is_an_explicit_out(self, lint_project):
        report = lint_project(
            {
                "src/specmod.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class RunSpec:
                        benchmark: str = "x"
                        trace_label: str = ""

                        def to_dict(self):
                            return {"benchmark": self.benchmark}

                    FINGERPRINT_ELIDED = ("trace_label",)
                    """
            },
            rules=["fingerprint-completeness"],
        )
        assert report.ok

    def test_coverage_follows_module_constants_to_a_fixpoint(self, lint_project):
        report = lint_project(
            {
                "src/specmod.py": """
                    from dataclasses import dataclass

                    _AXIS_FIELDS = ("seed", "sim_cycles")
                    _FIELD_DEFAULTS = tuple((name, 0) for name in _AXIS_FIELDS)

                    @dataclass
                    class RunSpec:
                        benchmark: str = "x"
                        seed: int = 0
                        sim_cycles: int = 0

                        def to_dict(self):
                            data = {"benchmark": self.benchmark}
                            for name, default in _FIELD_DEFAULTS:
                                data[name] = getattr(self, name)
                            return data
                    """
            },
            rules=["fingerprint-completeness"],
        )
        assert report.ok

    def test_other_dataclasses_are_ignored(self, lint_project):
        report = lint_project(
            {
                "src/other.py": """
                    from dataclasses import dataclass

                    @dataclass
                    class SomethingElse:
                        hidden: int = 0

                        def to_dict(self):
                            return {}
                    """
            },
            rules=["fingerprint-completeness"],
        )
        assert report.ok


class TestRealSpecContract:
    """The acceptance-criterion regressions against the real spec source."""

    def test_real_spec_is_currently_complete(self):
        report = lint_paths(
            [_SPEC_PATH], root=REPO_ROOT, rules=["fingerprint-completeness"]
        )
        assert report.ok, [f.render() for f in report.new_findings]

    def test_field_added_to_a_spec_copy_fails_the_rule(self, tmp_path):
        source = _SPEC_PATH.read_text()
        marker = "class RunSpec:\n"
        assert marker in source
        modified = source.replace(
            marker, marker + "    injected_knob: int = 0\n", 1
        )
        target = tmp_path / "spec_modified.py"
        target.write_text(modified)
        report = lint_paths(
            [target], root=tmp_path, rules=["fingerprint-completeness"]
        )
        assert not report.ok
        (finding,) = report.new_findings
        assert "'injected_knob'" in finding.message
        assert "aliases" in finding.message

    def test_runtime_injected_field_cannot_hide_from_the_ast(self, monkeypatch):
        import repro.api.spec as spec_module

        @dataclasses.dataclass
        class WiderSpec(spec_module.RunSpec):
            sneaky_knob: int = 0

        monkeypatch.setattr(spec_module, "RunSpec", WiderSpec)
        report = lint_paths(
            [_SPEC_PATH], root=REPO_ROOT, rules=["fingerprint-completeness"]
        )
        assert not report.ok
        messages = [f.message for f in report.new_findings]
        assert any("runtime RunSpec field 'sneaky_knob'" in m for m in messages)
