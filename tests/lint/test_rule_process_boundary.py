"""Process-boundary safety: what may cross into parallel_map workers."""


class TestProcessBoundary:
    def test_lambda_callable_is_flagged(self, lint_project):
        report = lint_project(
            {
                "src/sweep.py": """
                    from repro.perf.executor import parallel_map

                    def sweep(items):
                        return parallel_map(lambda item: item, items)
                    """
            },
            rules=["process-boundary"],
        )
        (finding,) = report.new_findings
        assert "lambda" in finding.message

    def test_constructed_objects_in_work_items_are_flagged(self, lint_project):
        report = lint_project(
            {
                "src/sweep.py": """
                    from repro.perf.executor import parallel_map

                    def sweep(worker, names):
                        tasks = [NocDesign(name) for name in names]
                        return parallel_map(worker, tasks)
                    """
            },
            rules=["process-boundary"],
        )
        (finding,) = report.new_findings
        assert "NocDesign" in finding.message
        assert "to_dict" in finding.message

    def test_literal_items_are_checked_without_an_assignment(self, lint_project):
        report = lint_project(
            {
                "src/sweep.py": """
                    from repro.perf.executor import parallel_map

                    def sweep(worker, spec):
                        return parallel_map(worker, [Engine(spec)])
                    """
            },
            rules=["process-boundary"],
        )
        assert len(report.new_findings) == 1

    def test_plain_dict_conversions_are_the_sanctioned_shape(self, lint_project):
        report = lint_project(
            {
                "src/sweep.py": """
                    from repro.perf.executor import parallel_map

                    def sweep(worker, specs, cache_dir):
                        tasks = [(spec.to_dict(), cache_dir) for spec in specs]
                        return parallel_map(worker, tasks)
                    """
            },
            rules=["process-boundary"],
        )
        assert report.ok

    def test_unresolvable_items_name_is_accepted(self, lint_project):
        report = lint_project(
            {
                "src/sweep.py": """
                    from repro.perf.executor import parallel_map

                    def sweep(worker, tasks):
                        return parallel_map(worker, tasks)
                    """
            },
            rules=["process-boundary"],
        )
        assert report.ok
