"""Fixture-file scenarios for the four determinism rules."""


class TestGlobalRandom:
    def test_module_level_rng_attribute_is_flagged(self, lint_project):
        report = lint_project(
            {
                "src/pick.py": """
                    import random

                    def pick(items):
                        return random.choice(items)
                    """
            },
            rules=["det-global-random"],
        )
        (finding,) = report.new_findings
        assert "random.choice" in finding.message

    def test_from_import_of_global_rng_function_is_flagged(self, lint_project):
        report = lint_project(
            {"src/pick.py": "from random import shuffle\n"},
            rules=["det-global-random"],
        )
        (finding,) = report.new_findings
        assert "from random import shuffle" in finding.message

    def test_aliased_import_is_still_seen(self, lint_project):
        report = lint_project(
            {"src/pick.py": "import random as rnd\nx = rnd.random()\n"},
            rules=["det-global-random"],
        )
        assert len(report.new_findings) == 1

    def test_seeded_instance_is_clean(self, lint_project):
        report = lint_project(
            {
                "src/pick.py": """
                    import random

                    def pick(items, seed):
                        rng = random.Random(seed)
                        return rng.choice(list(items))
                    """
            },
            rules=["det-global-random"],
        )
        assert report.ok


class TestUnseededRng:
    def test_zero_argument_random_is_flagged(self, lint_project):
        report = lint_project(
            {"src/gen.py": "import random\nrng = random.Random()\n"},
            rules=["det-unseeded-rng"],
        )
        (finding,) = report.new_findings
        assert "without a seed" in finding.message

    def test_from_imported_random_class_is_covered(self, lint_project):
        report = lint_project(
            {"src/gen.py": "from random import Random\nrng = Random()\n"},
            rules=["det-unseeded-rng"],
        )
        assert len(report.new_findings) == 1

    def test_seeded_construction_is_clean(self, lint_project):
        report = lint_project(
            {"src/gen.py": "import random\nrng = random.Random(7)\n"},
            rules=["det-unseeded-rng"],
        )
        assert report.ok


class TestWallClock:
    def test_time_time_is_flagged_in_library_code(self, lint_project):
        report = lint_project(
            {"src/stamp.py": "import time\nt = time.time()\n"},
            rules=["det-wallclock"],
        )
        (finding,) = report.new_findings
        assert "wall clock" in finding.message

    def test_datetime_now_is_flagged(self, lint_project):
        report = lint_project(
            {"src/stamp.py": "import datetime\nt = datetime.datetime.now()\n"},
            rules=["det-wallclock"],
        )
        assert len(report.new_findings) == 1

    def test_benchmarks_tree_is_exempt(self, lint_project):
        report = lint_project(
            {"benchmarks/timing.py": "import time\nt = time.time()\n"},
            rules=["det-wallclock"],
        )
        assert report.ok

    def test_perf_counter_is_the_sanctioned_alternative(self, lint_project):
        report = lint_project(
            {"src/stamp.py": "import time\nt = time.perf_counter()\n"},
            rules=["det-wallclock"],
        )
        assert report.ok


class TestSetOrder:
    def test_join_over_a_set_is_flagged_anywhere(self, lint_project):
        report = lint_project(
            {
                "src/render.py": """
                    def render():
                        extras = {"b", "a"}
                        return ",".join(extras)
                    """
            },
            rules=["det-set-order"],
        )
        (finding,) = report.new_findings
        assert "join over a set" in finding.message

    def test_sorted_wrapper_is_the_sanctioned_fix(self, lint_project):
        report = lint_project(
            {
                "src/render.py": """
                    def render():
                        extras = {"b", "a"}
                        return ",".join(sorted(extras))
                    """
            },
            rules=["det-set-order"],
        )
        assert report.ok

    def test_list_over_set_operation_result_is_flagged(self, lint_project):
        report = lint_project(
            {
                "src/render.py": """
                    def diff(a, b):
                        gone = set(a) - set(b)
                        return list(gone)
                    """
            },
            rules=["det-set-order"],
        )
        assert len(report.new_findings) == 1

    _FOR_LOOP_SOURCE = """
        def walk():
            names = {"b", "a"}
            out = []
            for name in names:
                out.append(name)
            return out
        """

    def test_bare_for_loop_is_flagged_in_canonical_modules(self, lint_project):
        report = lint_project(
            {
                "src/repro/__init__.py": "",
                "src/repro/api/__init__.py": "",
                "src/repro/api/cache.py": self._FOR_LOOP_SOURCE,
            },
            rules=["det-set-order"],
        )
        assert len(report.new_findings) == 1
        assert "canonical-output module" in report.new_findings[0].message

    def test_bare_for_loop_is_tolerated_elsewhere(self, lint_project):
        report = lint_project(
            {"src/walk.py": self._FOR_LOOP_SOURCE}, rules=["det-set-order"]
        )
        assert report.ok
