"""Shared fixtures for the noc-lint test suite.

``lint_project`` builds a throwaway project tree from inline sources and
runs :func:`repro.lint.engine.lint_paths` over it, so every rule test is a
small fixture-file scenario: write the offending (or clean) source, lint,
assert on the report.  File keys are paths relative to the project root
(``"src/repro/api/spec.py"``), so path- and module-sensitive rules see the
same shapes they see in the real repo.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint.engine import lint_paths

#: The real repository root (tests/lint/conftest.py -> repo).
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def lint_project(tmp_path):
    """Factory: write fixture files, lint them, return the report.

    ``files`` maps root-relative paths to sources (dedented before
    writing); ``tests`` does the same under ``tests/`` and enables the
    project-level cross-referencing pass.  ``rules`` restricts the run to
    the rule ids under test so fixtures stay minimal.
    """

    def run(files, *, tests=None, rules=None, baseline=None):
        top_level = set()
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
            top_level.add(rel.split("/")[0])
        tests_dir = None
        if tests is not None:
            tests_dir = tmp_path / "tests"
            for rel, source in tests.items():
                target = tests_dir / rel
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_text(textwrap.dedent(source))
        return lint_paths(
            [tmp_path / name for name in sorted(top_level)],
            root=tmp_path,
            tests_dir=tests_dir,
            rules=rules,
            baseline=baseline,
        )

    return run
