"""The repo-level lint contract this PR establishes.

``src`` lints clean against the (empty) checked-in baseline, and the lint
package itself is clean with *zero* suppressions — the checker does not
get to excuse itself.  These tests are the in-process mirror of the CI
gate, so a finding introduced by a future PR fails the suite even before
CI runs the CLI.
"""

import io
import json
import re
import tokenize
from pathlib import Path

import pytest

from repro.lint.engine import lint_paths
from repro.lint.findings import FINDING_KEYS
from repro.perf.executor import parallel_map

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRepoIsClean:
    def test_src_tree_has_no_new_findings_against_the_baseline(self):
        report = lint_paths(
            [REPO_ROOT / "src"],
            root=REPO_ROOT,
            tests_dir=REPO_ROOT / "tests",
            baseline=REPO_ROOT / "lint-baseline.json",
        )
        assert report.new_findings == [], [f.render() for f in report.new_findings]

    def test_checked_in_baseline_is_empty(self):
        document = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert document["findings"] == []

    def test_lint_package_is_clean_without_baseline_or_suppressions(self):
        report = lint_paths(
            [REPO_ROOT / "src" / "repro" / "lint"], root=REPO_ROOT
        )
        assert report.new_findings == [], [f.render() for f in report.new_findings]
        assert report.suppressed == []

    def test_lint_package_source_carries_no_disable_comments(self):
        for path in sorted((REPO_ROOT / "src" / "repro" / "lint").rglob("*.py")):
            tokens = tokenize.generate_tokens(
                io.StringIO(path.read_text()).readline
            )
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    assert "noc-lint" not in token.string, (
                        f"{path}:{token.start[0]} suppresses the linter "
                        "inside the linter"
                    )


def _identity(value):
    return value


class TestExecutorWarningPayloads:
    def test_serial_fallback_warning_carries_the_finding_schema(self):
        with pytest.warns(RuntimeWarning, match="not picklable") as caught:
            out = parallel_map(_identity, [lambda: 1, lambda: 2], jobs=2)
        assert len(out) == 2
        message = next(
            str(w.message) for w in caught if "not picklable" in str(w.message)
        )
        match = re.search(r"\[noc-lint (\{.*\})\]$", message)
        assert match, message
        payload = json.loads(match.group(1))
        assert set(payload) == set(FINDING_KEYS)
        assert payload["rule"] == "process-boundary"
        assert "not picklable" in payload["message"]

    def test_prose_prefix_is_unchanged_for_log_readers(self):
        with pytest.warns(RuntimeWarning) as caught:
            parallel_map(_identity, [lambda: 1, lambda: 2], jobs=2)
        message = str(caught[0].message)
        assert message.startswith(
            "parallel_map: work is not picklable, falling back to serial"
        )
