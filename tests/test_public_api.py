"""Tests of the top-level public API surface (``import repro``)."""

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_headline_workflow_through_top_level_names_only(self):
        design = repro.paper_ring_design()
        assert not repro.is_deadlock_free(design)
        result = repro.remove_deadlocks(design)
        assert repro.build_cdg(result.design).is_acyclic()
        assert repro.apply_resource_ordering(design).extra_vcs > result.added_vc_count
        assert "digraph" in repro.topology_to_dot(result.design)

    def test_benchmark_names_available(self):
        assert "D26_media" in repro.list_benchmarks()

    def test_errors_accessible_from_package(self):
        assert issubclass(repro.ConvergenceError, repro.ReproError)
        assert issubclass(repro.ValidationError, repro.DesignError)
