"""The batched numpy engine reproduces the compiled engine exactly, per lane.

``run_batch`` advances B simulations of one design as a single
structure-of-arrays program; every lane must produce **field-identical**
:class:`~repro.simulation.stats.SimulationStats` to what
``CompiledSimulator(design, config).run(...)`` yields for that lane's
config — delivered flits and packets, the full latency list (order
included), per-channel busy cycles, and the deadlock verdict with the
exact channels on the wait cycle.  The suite sweeps hand-built fixtures,
a hypothesis grid of topology families x scenarios x loads, mixed-lane
batches, and pins the registry contract (B = 1 ``"batched"`` simulator),
the fault-schedule fallback and the lazy numpy import error.
"""

from __future__ import annotations

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import simulation_engines
from repro.core.removal import remove_deadlocks
from repro.errors import SimulationError
from repro.examples_data.paper_ring import paper_ring_design
from repro.perf import batch_engine
from repro.perf.batch_engine import BatchedSimulator, run_batch
from repro.perf.sim_engine import CompiledSimulator
from repro.simulation.events import EventSchedule
from repro.simulation.simulator import (
    SimulationConfig,
    build_simulator,
    simulate_design,
    stats_divergences,
)
from repro.synthesis.regular import mesh_design, ring_design

SCENARIOS = ("flows", "uniform", "hotspot", "transpose", "bursty")


def assert_lane_identical(batched, config, design, max_cycles):
    reference = CompiledSimulator(design, config).run(max_cycles)
    problems = stats_divergences(batched, reference)
    assert not problems, problems


class TestRegistry:
    def test_batched_engine_registered(self):
        assert "batched" in simulation_engines.names()

    def test_build_simulator_returns_batched(self, small_mesh_design):
        simulator = build_simulator(
            small_mesh_design, SimulationConfig(injection_scale=1.0), engine="batched"
        )
        assert isinstance(simulator, BatchedSimulator)


class TestSingleLaneEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_mesh_all_scenarios(self, scenario):
        design = mesh_design(3, 3)
        config = SimulationConfig(
            injection_scale=3.0, seed=2, traffic_scenario=scenario
        )
        stats = BatchedSimulator(design, config).run(600)
        assert_lane_identical(stats, config, design, 600)
        assert stats.packets_delivered > 0

    def test_deadlock_verdict_and_channels_identical(self):
        """An unprotected ring under pressure deadlocks identically."""
        design = paper_ring_design()
        config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)
        reference = CompiledSimulator(design, config).run(4000)
        stats = BatchedSimulator(design, config).run(4000)
        assert reference.deadlock_detected
        assert not stats_divergences(stats, reference)
        assert stats.deadlocked_channels == reference.deadlocked_channels
        assert stats.deadlock_cycle == reference.deadlock_cycle

    def test_protected_ring_survives(self):
        design = remove_deadlocks(paper_ring_design()).design
        config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)
        stats = BatchedSimulator(design, config).run(4000)
        assert not stats.deadlock_detected
        assert_lane_identical(stats, config, design, 4000)

    def test_simulate_design_engine_flag(self, small_mesh_design):
        config = SimulationConfig(injection_scale=1.5, seed=3)
        batched = simulate_design(
            small_mesh_design, max_cycles=300, config=config, engine="batched"
        )
        compiled = simulate_design(
            small_mesh_design, max_cycles=300, config=config, engine="compiled"
        )
        assert batched == compiled


class TestMultiLaneEquivalence:
    def test_mixed_lanes_one_program(self, small_mesh_design):
        """Scales, seeds and scenarios vary freely across the lanes."""
        configs = [
            SimulationConfig(injection_scale=0.5, seed=0),
            SimulationConfig(injection_scale=2.0, seed=1),
            SimulationConfig(injection_scale=1.0, seed=2, traffic_scenario="uniform"),
            SimulationConfig(injection_scale=4.0, seed=3, traffic_scenario="hotspot"),
            SimulationConfig(injection_scale=1.5, seed=4, traffic_scenario="bursty"),
        ]
        stats_list = run_batch(small_mesh_design, configs, max_cycles=400)
        assert len(stats_list) == len(configs)
        for stats, config in zip(stats_list, configs):
            assert_lane_identical(stats, config, small_mesh_design, 400)

    def test_deadlocking_and_surviving_lanes_coexist(self):
        """A lane deadlocking must not perturb its batch neighbours."""
        design = paper_ring_design()
        configs = [
            SimulationConfig(injection_scale=0.25, buffer_depth=2, seed=0),
            SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1),
        ]
        stats_list = run_batch(design, configs, max_cycles=4000)
        assert stats_list[1].deadlock_detected
        for stats, config in zip(stats_list, configs):
            assert_lane_identical(stats, config, design, 4000)

    def test_lane_count_one_matches_solo(self, small_ring_design):
        config = SimulationConfig(injection_scale=2.0, seed=5)
        (stats,) = run_batch(small_ring_design, [config], max_cycles=500)
        assert_lane_identical(stats, config, small_ring_design, 500)

    @settings(max_examples=20, deadline=None)
    @given(
        family=st.sampled_from(["ring", "biring", "mesh", "protected_ring"]),
        size=st.integers(min_value=4, max_value=7),
        scales=st.lists(
            st.sampled_from([0.5, 1.5, 4.0, 8.0]), min_size=1, max_size=4
        ),
        depth=st.integers(min_value=1, max_value=4),
        scenario=st.sampled_from(SCENARIOS),
    )
    def test_random_grids_identical(self, family, size, scales, depth, scenario):
        if family == "ring":
            design = ring_design(size)
        elif family == "biring":
            design = ring_design(size, bidirectional=True)
        elif family == "mesh":
            design = mesh_design(2, size - 2)
        else:
            design = remove_deadlocks(ring_design(size)).design
        configs = [
            SimulationConfig(
                injection_scale=scale,
                buffer_depth=depth,
                seed=lane,
                traffic_scenario=scenario,
            )
            for lane, scale in enumerate(scales)
        ]
        stats_list = run_batch(design, configs, max_cycles=400)
        for stats, config in zip(stats_list, configs):
            assert_lane_identical(stats, config, design, 400)


class TestCrossCheckFlag:
    def test_cross_check_passes(self, d36_8_design_14sw):
        design = remove_deadlocks(d36_8_design_14sw).design
        stats = simulate_design(
            design,
            max_cycles=300,
            config=SimulationConfig(injection_scale=2.0, seed=0),
            engine="batched",
            cross_check=True,
        )
        assert stats.packets_delivered > 0

    def test_cross_check_raises_on_divergence(self, small_mesh_design, monkeypatch):
        """A rigged compiled reference must be caught lane by lane."""
        original = CompiledSimulator.run

        def rigged(self, max_cycles=10_000, **kwargs):
            stats = original(self, max_cycles, **kwargs)
            stats.flits_delivered += 1
            return stats

        monkeypatch.setattr(CompiledSimulator, "run", rigged)
        with pytest.raises(SimulationError, match="diverged"):
            run_batch(
                small_mesh_design,
                [SimulationConfig(injection_scale=2.0)],
                max_cycles=200,
                cross_check=True,
            )


class TestBatchRejections:
    def test_empty_batch_rejected(self, small_mesh_design):
        with pytest.raises(SimulationError, match="at least one"):
            run_batch(small_mesh_design, [], max_cycles=100)

    def test_mixed_buffer_depth_rejected(self, small_mesh_design):
        configs = [
            SimulationConfig(injection_scale=1.0, buffer_depth=2),
            SimulationConfig(injection_scale=1.0, buffer_depth=4),
        ]
        with pytest.raises(SimulationError, match="buffer_depth"):
            run_batch(small_mesh_design, configs, max_cycles=100)

    def test_fault_schedule_rejected_in_batch(self, small_mesh_design):
        schedule = EventSchedule.random(
            small_mesh_design.topology, seed=1, link_failures=1
        )
        configs = [SimulationConfig(injection_scale=1.0, fault_schedule=schedule)]
        with pytest.raises(SimulationError, match="fault"):
            run_batch(small_mesh_design, configs, max_cycles=100)


class TestFaultScheduleFallback:
    def _schedule(self, design):
        return EventSchedule.random(
            design.topology, seed=1, link_failures=1, start_cycle=40, end_cycle=200
        )

    def test_constructor_falls_back_with_structured_warning(self, small_mesh_design):
        config = SimulationConfig(
            injection_scale=1.0, fault_schedule=self._schedule(small_mesh_design)
        )
        with pytest.warns(RuntimeWarning, match=r"batched-engine-fallback"):
            simulator = BatchedSimulator(small_mesh_design, config)
        assert isinstance(simulator, CompiledSimulator)
        assert not isinstance(simulator, BatchedSimulator)

    def test_warning_payload_is_structured(self, small_mesh_design):
        config = SimulationConfig(
            injection_scale=1.0, fault_schedule=self._schedule(small_mesh_design)
        )
        with pytest.warns(RuntimeWarning, match=r"\[noc-lint \{") as captured:
            BatchedSimulator(small_mesh_design, config)
        assert any("batched-engine-fallback" in str(w.message) for w in captured)

    def test_fallback_results_correct(self, small_mesh_design):
        """The fallback simulator's verdict matches a compiled run exactly."""
        config = SimulationConfig(
            injection_scale=1.5, seed=2, fault_schedule=self._schedule(small_mesh_design)
        )
        with pytest.warns(RuntimeWarning):
            stats = BatchedSimulator(small_mesh_design, config).run(400)
        reference = CompiledSimulator(small_mesh_design, config).run(400)
        assert not stats_divergences(stats, reference)
        assert stats.fault_events_applied > 0


class TestLazyNumpyImport:
    def test_missing_numpy_raises_clear_error(self, small_mesh_design, monkeypatch):
        """Without numpy the 'batched' engine must name the dependency."""
        monkeypatch.setattr(batch_engine, "_np", None)
        monkeypatch.setitem(sys.modules, "numpy", None)  # import numpy -> ImportError
        config = SimulationConfig(injection_scale=1.0)
        with pytest.raises(SimulationError, match="numpy"):
            BatchedSimulator(small_mesh_design, config).run(100)

    def test_other_engines_unaffected_by_missing_numpy(
        self, small_mesh_design, monkeypatch
    ):
        monkeypatch.setattr(batch_engine, "_np", None)
        monkeypatch.setitem(sys.modules, "numpy", None)
        config = SimulationConfig(injection_scale=1.0)
        stats = simulate_design(
            small_mesh_design, max_cycles=100, config=config, engine="compiled"
        )
        assert stats.flits_delivered > 0
