"""DesignContext: shared state reuse, delta maintenance and invalidation.

The context must never serve stale routing state: a channel duplicated
mid-run — as a VC (no graph change) or as a parallel physical link (graph
delta) — must leave the cached switch graph exactly equal to a fresh
rebuild, and out-of-band topology edits must be caught by the staleness
check.  These tests assert that by routing through the cached graph and
through a freshly built one and requiring identical routes.
"""

from __future__ import annotations

import pytest

from repro.model.channels import Channel, Link
from repro.model.topology import Topology
from repro.perf.design_context import DesignContext, counters
from repro.perf.route_engine import SwitchGraph
from repro.routing.shortest_path import compute_routes
from repro.routing.turns import compute_updown_routes, updown_orientation
from repro.synthesis.builder import SynthesisConfig, synthesize_design
from repro.benchmarks.registry import get_benchmark


@pytest.fixture
def design():
    traffic = get_benchmark("D26_media", seed=0)
    return synthesize_design(traffic, SynthesisConfig(n_switches=8, seed=0))


def _all_pair_routes(graph: SwitchGraph):
    """Every reachable pair's route via a graph (deterministic probe)."""
    routes = {}
    for src in graph.switches:
        for dst in graph.switches:
            if src == dst:
                continue
            path = graph.shortest_path(graph.id_of[src], graph.id_of[dst])
            routes[(src, dst)] = path if path is None else [graph.links[i] for i in path]
    return routes


class TestGraphReuse:
    def test_same_graph_served_across_calls(self, design):
        context = DesignContext.of(design)
        first = context.graph()
        assert context.graph() is first

    def test_context_attached_to_design_instance(self, design):
        assert DesignContext.of(design) is DesignContext.of(design)
        assert DesignContext.of(design.copy()) is not DesignContext.of(design)

    def test_repeated_compute_routes_reuse_one_graph(self, design):
        counters.reset()
        compute_routes(design)
        compute_routes(design)
        compute_routes(design)
        assert counters.graph_builds <= 1
        assert counters.graph_reuses >= 2


class TestRouterFactory:
    """``context.router()`` — the sanctioned construction point outside perf/."""

    def test_router_shares_the_cached_graph(self, design):
        context = DesignContext.of(design)
        router = context.router()
        assert router.graph is context.graph()

    def test_router_matches_direct_construction(self, design):
        from repro.perf.route_engine import IndexedRouter

        context = DesignContext.of(design)
        factory_router = context.router(congestion_factor=0.5, total_bandwidth=2.0)
        direct_router = IndexedRouter(
            design.topology,
            congestion_factor=0.5,
            total_bandwidth=2.0,
            graph=context.graph(),
        )
        switches = sorted(design.topology.switches)
        for src in switches[:4]:
            for dst in switches[-4:]:
                if src == dst:
                    continue
                assert factory_router.route(src, dst) == direct_router.route(src, dst)

    def test_each_call_starts_with_zeroed_congestion(self, design):
        context = DesignContext.of(design)
        first = context.router(congestion_factor=1.0, total_bandwidth=1.0)
        switches = sorted(design.topology.switches)
        route = first.route(switches[0], switches[-1])
        first.commit(route, 5.0)
        assert any(first.routed_bandwidth)
        fresh = context.router(congestion_factor=1.0, total_bandwidth=1.0)
        assert not any(fresh.routed_bandwidth)

    def test_reused_graph_routes_equal_fresh_build(self, design):
        context = DesignContext.of(design)
        context.graph()
        compute_routes(design)  # exercise + warm
        assert _all_pair_routes(context.graph()) == _all_pair_routes(
            SwitchGraph(design.topology)
        )


class TestInvalidation:
    def test_vc_duplication_keeps_graph_valid(self, design):
        """Extra VCs change no physical link: same graph object, same routes."""
        context = DesignContext.of(design)
        graph = context.graph()
        link = design.topology.links[0]
        duplicate = design.topology.add_virtual_channel(link)
        context.notify_channel_added(duplicate)
        assert context.graph() is graph
        assert _all_pair_routes(context.graph()) == _all_pair_routes(
            SwitchGraph(design.topology)
        )

    def test_parallel_link_delta_matches_fresh_rebuild(self, design):
        """A notified parallel link is appended in place, not rebuilt."""
        context = DesignContext.of(design)
        graph = context.graph()
        counters.reset()
        new_link = design.topology.add_parallel_link(design.topology.links[0])
        context.notify_link_added(new_link)
        assert context.graph() is graph  # delta, not rebuild
        assert counters.graph_deltas == 1
        assert new_link in context.graph().link_id
        assert _all_pair_routes(context.graph()) == _all_pair_routes(
            SwitchGraph(design.topology)
        )

    def test_out_of_band_link_addition_triggers_rebuild(self, design):
        """Un-notified topology edits must not be served stale."""
        context = DesignContext.of(design)
        stale = context.graph()
        switches = design.topology.switches
        design.topology.add_link(switches[0], switches[-1], index=7)
        fresh = context.graph()
        assert fresh is not stale
        assert _all_pair_routes(fresh) == _all_pair_routes(SwitchGraph(design.topology))

    def test_mid_run_duplication_routes_match_fresh_context(self, design):
        """The satellite scenario: duplicate channels mid-run, then route —
        results must match a context built from scratch on the same design."""
        context = DesignContext.of(design)
        context.graph()
        topology = design.topology
        for link in topology.links[:3]:
            context.notify_channel_added(topology.add_virtual_channel(link))
        new_link = topology.add_parallel_link(topology.links[1])
        context.notify_link_added(new_link)
        compute_routes(design)
        via_context = {name: design.routes.route(name) for name in design.routes}
        fresh = design.copy()
        compute_routes(fresh)
        via_fresh = {name: fresh.routes.route(name) for name in fresh.routes}
        assert via_context == via_fresh


class TestUpdownState:
    def test_orientation_matches_reference(self, design):
        context = DesignContext.of(design)
        orientation, up_flags = context.updown_state()
        reference = updown_orientation(design.topology)
        assert orientation == reference
        graph = context.graph()
        assert up_flags == [reference[link] == "up" for link in graph.links]

    def test_cached_until_topology_changes(self, design):
        context = DesignContext.of(design)
        counters.reset()
        context.updown_state()
        context.updown_state()
        assert counters.updown_builds == 1
        assert counters.updown_reuses == 1
        new_link = design.topology.add_parallel_link(design.topology.links[0])
        context.notify_link_added(new_link)
        orientation, up_flags = context.updown_state()
        assert counters.updown_builds == 2
        assert orientation == updown_orientation(design.topology)
        assert len(up_flags) == design.topology.link_count

    def test_repeated_updown_routing_reuses_state(self, design):
        counters.reset()
        first = compute_updown_routes(design).copy()
        second = compute_updown_routes(design).copy()
        assert first == second
        assert counters.updown_reuses >= 1


class TestRouteIndex:
    def test_route_ids_follow_route_changes(self, design):
        context = DesignContext.of(design)
        cdg = context.cdg_index()
        flow_name = design.routes.flow_names[0]
        old_route = design.routes.route(flow_name)
        assert [cdg.channel_of(i) for i in context.route_ids(flow_name)] == list(
            old_route.channels
        )
        duplicate = design.topology.add_virtual_channel(old_route[0].link)
        new_route = old_route.replace_at_positions({0: duplicate})
        design.routes.set_route(flow_name, new_route)
        context.apply_route_change(flow_name, old_route, new_route)
        assert [cdg.channel_of(i) for i in context.route_ids(flow_name)] == list(
            new_route.channels
        )

    def test_out_of_band_route_change_rebuilds_cdg(self, design):
        """Routes rewritten without apply_route_change must not leave a
        stale CDG behind (version-stamp staleness guard)."""
        context = DesignContext.of(design)
        stale = context.cdg_index()
        compute_routes(design, weight_mode="hops")  # out-of-band rewrite
        fresh = context.cdg_index()
        assert fresh is not stale
        from repro.core.cdg import build_cdg

        fresh.verify_against(build_cdg(design))

    def test_repeated_in_place_removal_with_reroute_between(self):
        """The reviewer scenario: in-place removal, out-of-band re-route,
        in-place removal again — the attached context must not serve the
        first run's CDG to the second."""
        from repro.core.removal import remove_deadlocks

        traffic = get_benchmark("D36_8", seed=0)
        design = synthesize_design(traffic, SynthesisConfig(n_switches=14, seed=0))
        remove_deadlocks(design, engine="context", in_place=True)
        compute_routes(design)  # bypasses the context's apply_route_change
        # The reference runs on a copy of the *same* mutated state; the
        # context run must match it despite the stale attached context.
        reference = remove_deadlocks(design.copy(), engine="rebuild", in_place=True)
        result = remove_deadlocks(design, engine="context", in_place=True, cross_check=True)
        assert result.is_deadlock_free
        assert result.actions == reference.actions
        assert result.design.routes == reference.design.routes

    def test_pickling_drops_attached_context(self, design):
        """Contexts are per-process caches: they must not ride along when a
        design crosses a process boundary (sweep workers return designs)."""
        import pickle

        context = DesignContext.of(design)
        context.graph()
        context.cdg_index()
        clone = pickle.loads(pickle.dumps(design))
        assert not hasattr(clone, "_design_context")
        assert clone == design
        assert DesignContext.of(clone) is not context

    def test_flows_creating_matches_reference_scan(self, design):
        from repro.core.breaker import flows_creating_dependency
        from repro.core.cdg import build_cdg

        context = DesignContext.of(design)
        cdg = build_cdg(design)
        for edge in sorted(cdg.edges)[:10]:
            assert context.flows_creating(edge) == flows_creating_dependency(
                design, edge
            )
