"""The incremental engine reproduces the seed engine on every benchmark.

For all six registry benchmarks the incremental engine must produce the
exact :class:`~repro.core.report.BreakAction` sequence of the seed
(rebuild) engine — same cycles, same broken edges, same costs, same
rerouted flows, same added channels — plus the same headline numbers.
The cross-check flag additionally asserts, after every single break, that
the incrementally maintained CDG equals a from-scratch rebuild.
"""

from __future__ import annotations

import pytest

from repro.benchmarks.registry import list_benchmarks
from repro.benchmarks.registry import get_benchmark
from repro.core.removal import DeadlockRemover, remove_deadlocks
from repro.errors import RemovalError
from repro.synthesis.builder import SynthesisConfig, synthesize_design

#: The paper's Figure 10 configuration: every benchmark at 14 switches.
SWITCH_COUNT = 14


def _synthesize(name: str, seed: int = 0):
    traffic = get_benchmark(name, seed=seed)
    return synthesize_design(traffic, SynthesisConfig(n_switches=SWITCH_COUNT, seed=seed))


@pytest.mark.parametrize("name", list_benchmarks())
def test_identical_break_actions_on_benchmark(name):
    design = _synthesize(name)
    seed_result = remove_deadlocks(design, engine="rebuild")
    for engine in ("incremental", "context"):
        fast_result = remove_deadlocks(design, engine=engine, cross_check=True)
        assert fast_result.actions == seed_result.actions
        assert fast_result.iterations == seed_result.iterations
        assert fast_result.added_vc_count == seed_result.added_vc_count
        assert fast_result.initial_cycle_count == seed_result.initial_cycle_count
        assert fast_result.initially_deadlock_free == seed_result.initially_deadlock_free
        assert fast_result.design.routes == seed_result.design.routes


def test_default_engine_is_context():
    remover = DeadlockRemover()
    assert remover.engine == "context"
    assert remover.cross_check is False


def test_unknown_engine_rejected():
    with pytest.raises(RemovalError):
        DeadlockRemover(engine="warp")


def test_ablation_selections_still_work_with_incremental_engine():
    """largest/random selections transparently use the rebuild loop."""
    design = _synthesize("D36_8")
    result = remove_deadlocks(design, cycle_selection="largest", engine="incremental")
    assert result.is_deadlock_free
    result = remove_deadlocks(design, cycle_selection="random", engine="incremental")
    assert result.is_deadlock_free


def test_actions_carry_route_deltas():
    """Every break reports the pre-break routes of the flows it moved."""
    design = _synthesize("D36_8")
    result = remove_deadlocks(design)
    assert result.actions, "expected at least one break on D36_8 at 14 switches"
    for action in result.actions:
        assert action.previous_routes is not None
        assert set(action.previous_routes) == set(action.flows_rerouted)
        for flow_name, old_route in action.previous_routes.items():
            new_route = result.design.routes.route(flow_name)
            assert [c.link.src for c in old_route] == [c.link.src for c in new_route]
