"""The indexed, SCC-pruned cycle search returns exactly the seed's cycles."""

from __future__ import annotations

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from route_strategies import random_route, random_route_sets

from repro.core.cdg import build_cdg
from repro.core.cycles import count_cycles, find_smallest_cycle
from repro.model.channels import Channel, Link
from repro.perf.cdg_index import CDGIndex
from repro.perf.cycle_search import (
    IncrementalCycleSearch,
    count_cycles_indexed,
    tarjan_sccs,
)

SEARCH_SETTINGS = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def ch(src, dst, vc=0):
    return Channel(Link(src, dst), vc)


class TestSearchEquivalence:
    @given(routes=random_route_sets())
    @SEARCH_SETTINGS
    def test_matches_seed_search_on_fresh_graphs(self, routes):
        expected = find_smallest_cycle(build_cdg(routes))
        found = IncrementalCycleSearch(CDGIndex.from_routes(routes)).find_smallest()
        assert found == expected

    @given(routes=random_route_sets())
    @SEARCH_SETTINGS
    def test_depth_limited_matches_seed_search(self, routes):
        """The depth-limited array variant returns the exact same cycle."""
        expected = find_smallest_cycle(build_cdg(routes))
        search = IncrementalCycleSearch(
            CDGIndex.from_routes(routes), depth_limited=True
        )
        assert search.find_smallest() == expected

    @given(
        routes=random_route_sets(),
        replacements=st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), random_route()),
            min_size=1,
            max_size=6,
        ),
    )
    @SEARCH_SETTINGS
    def test_matches_seed_search_across_incremental_updates(self, routes, replacements):
        """Cached per-SCC results stay exact while routes mutate underneath."""
        index = CDGIndex.from_routes(routes)
        limited_index = CDGIndex.from_routes(routes)
        search = IncrementalCycleSearch(index)
        limited = IncrementalCycleSearch(limited_index, depth_limited=True)
        assert search.find_smallest() == find_smallest_cycle(build_cdg(routes))
        assert limited.find_smallest() == find_smallest_cycle(build_cdg(routes))
        names = routes.flow_names
        for flow_index, new_route in replacements:
            flow_name = names[flow_index % len(names)]
            old_route = routes.route(flow_name)
            routes.set_route(flow_name, new_route)
            index.apply_route_change(flow_name, old_route.channels, new_route.channels)
            limited_index.apply_route_change(
                flow_name, old_route.channels, new_route.channels
            )
            expected = find_smallest_cycle(build_cdg(routes))
            assert search.find_smallest() == expected
            assert limited.find_smallest() == expected

    def test_acyclic_returns_none(self):
        index = CDGIndex()
        index.add_route("f0", [ch("A", "B"), ch("B", "C"), ch("C", "D")])
        assert IncrementalCycleSearch(index).find_smallest() is None

    def test_two_cycle_beats_three_cycle(self):
        index = CDGIndex()
        index.add_route("f0", [ch("X", "Y"), ch("Y", "X"), ch("X", "Y")])
        index.add_route("f1", [ch("A", "B"), ch("B", "C"), ch("C", "A"), ch("A", "B")])
        cycle = IncrementalCycleSearch(index).find_smallest()
        assert len(cycle) == 2
        assert set(cycle) == {ch("X", "Y"), ch("Y", "X")}

    def test_cache_reused_for_untouched_component(self):
        """A search after an unrelated delta must not re-dirty a clean SCC."""
        index = CDGIndex()
        index.add_route("f0", [ch("A", "B"), ch("B", "A"), ch("A", "B")])
        index.add_route("f1", [ch("C", "D"), ch("D", "C"), ch("C", "D")])
        search = IncrementalCycleSearch(index)
        first = search.find_smallest()
        assert len(first) == 2
        # Break the A/B cycle (its flow now stops before closing the loop).
        index.apply_route_change("f0", [ch("A", "B"), ch("B", "A"), ch("A", "B")],
                                 [ch("A", "B"), ch("B", "A")])
        second = search.find_smallest()
        assert set(second) == {ch("C", "D"), ch("D", "C")}


class TestTarjan:
    @given(routes=random_route_sets())
    @SEARCH_SETTINGS
    def test_components_match_networkx(self, routes):
        index = CDGIndex.from_routes(routes)
        mine = {
            frozenset(component)
            for component in tarjan_sccs(index.sorted_vertices(), index.successors)
        }
        graph = nx.DiGraph()
        graph.add_nodes_from(index.sorted_vertices())
        for node in index.sorted_vertices():
            graph.add_edges_from((node, succ) for succ in index.successors(node))
        theirs = {frozenset(c) for c in nx.strongly_connected_components(graph)}
        assert mine == theirs


class TestCountCycles:
    @given(routes=random_route_sets())
    @SEARCH_SETTINGS
    def test_indexed_count_matches_seed_count(self, routes):
        index = CDGIndex.from_routes(routes)
        assert count_cycles_indexed(index, limit=100) == count_cycles(
            build_cdg(routes), limit=100
        )

    def test_limit_caps_count(self):
        index = CDGIndex()
        # K4-ish dependency mesh: plenty of elementary cycles.
        for i, (a, b) in enumerate(
            [("A", "B"), ("B", "A"), ("B", "C"), ("C", "B"), ("C", "A"), ("A", "C")]
        ):
            index.add_route(f"f{i}", [ch(a, b), ch(b, "D" if b != "D" else "A")])
        index.add_route("g0", [ch("A", "B"), ch("B", "A"), ch("A", "B")])
        index.add_route("g1", [ch("B", "C"), ch("C", "B"), ch("B", "C")])
        assert count_cycles_indexed(index, limit=1) == 1
        assert count_cycles_indexed(index, limit=0) == 0
