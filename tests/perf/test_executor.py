"""Tests for the parallel sweep executor (repro.perf.executor)."""

from __future__ import annotations

import pytest

from repro.perf.executor import parallel_map, resolve_jobs


def square(x):
    """Module-level on purpose: process pools must be able to pickle it."""
    return x * x


def failing(x):
    raise ValueError(f"boom on {x}")


def exit_in_worker(task):
    """Kill the worker process for the "boom" item (breaks the pool); the
    serial retry in the parent process completes normally."""
    import os

    item, parent_pid = task
    if item == "boom" and os.getpid() != parent_pid:
        os._exit(1)
    return item


class TestResolveJobs:
    def test_serial_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1

    def test_positive_passthrough(self):
        assert resolve_jobs(4) == 4

    def test_negative_means_cpu_count(self):
        assert resolve_jobs(-1) >= 1


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(10))
        assert parallel_map(square, items) == [square(x) for x in items]

    def test_parallel_results_in_input_order(self):
        items = list(range(20))
        assert parallel_map(square, items, jobs=4) == [square(x) for x in items]

    def test_empty_items(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_single_item_runs_inline(self):
        assert parallel_map(square, [3], jobs=8) == [9]

    def test_unpicklable_function_falls_back_to_serial(self):
        offset = 10
        with pytest.warns(RuntimeWarning, match="not picklable"):
            results = parallel_map(lambda x: x + offset, [1, 2, 3], jobs=2)
        assert results == [11, 12, 13]

    def test_serial_propagates_exceptions(self):
        with pytest.raises(ValueError):
            parallel_map(failing, [1], jobs=1)

    def test_parallel_propagates_exceptions(self):
        with pytest.raises(ValueError):
            parallel_map(failing, [1, 2, 3, 4], jobs=2)

    def test_broken_pool_warns_about_discarded_partials_and_reruns(self):
        # A worker dying mid-run breaks the pool; parallel_map must say how
        # many already-computed results it is discarding (their side effects
        # will run twice in the serial retry) instead of silently retrying.
        import os

        pid = os.getpid()
        items = [("a", pid), ("b", pid), ("boom", pid), ("c", pid)]
        with pytest.warns(RuntimeWarning, match="discarding"):
            results = parallel_map(exit_in_worker, items, jobs=2)
        assert results == ["a", "b", "boom", "c"]

    def test_broken_pool_warning_reports_completed_count(self):
        import os
        import warnings as warnings_module

        pid = os.getpid()
        items = [(x, pid) for x in ["a", "b", "c", "d"]] + [("boom", pid)]
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            results = parallel_map(exit_in_worker, items, jobs=2)
        assert results == ["a", "b", "c", "d", "boom"]
        messages = [str(w.message) for w in caught if w.category is RuntimeWarning]
        assert any("of 5 item(s) completed" in m for m in messages)
        assert any("run twice" in m for m in messages)
