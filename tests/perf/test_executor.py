"""Tests for the parallel sweep executor (repro.perf.executor)."""

from __future__ import annotations

import pytest

from repro.perf.executor import parallel_map, resolve_jobs


def square(x):
    """Module-level on purpose: process pools must be able to pickle it."""
    return x * x


def failing(x):
    raise ValueError(f"boom on {x}")


class TestResolveJobs:
    def test_serial_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1

    def test_positive_passthrough(self):
        assert resolve_jobs(4) == 4

    def test_negative_means_cpu_count(self):
        assert resolve_jobs(-1) >= 1


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(10))
        assert parallel_map(square, items) == [square(x) for x in items]

    def test_parallel_results_in_input_order(self):
        items = list(range(20))
        assert parallel_map(square, items, jobs=4) == [square(x) for x in items]

    def test_empty_items(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_single_item_runs_inline(self):
        assert parallel_map(square, [3], jobs=8) == [9]

    def test_unpicklable_function_falls_back_to_serial(self):
        offset = 10
        with pytest.warns(RuntimeWarning, match="not picklable"):
            results = parallel_map(lambda x: x + offset, [1, 2, 3], jobs=2)
        assert results == [11, 12, 13]

    def test_serial_propagates_exceptions(self):
        with pytest.raises(ValueError):
            parallel_map(failing, [1], jobs=1)

    def test_parallel_propagates_exceptions(self):
        with pytest.raises(ValueError):
            parallel_map(failing, [1, 2, 3, 4], jobs=2)
