"""Tests for the parallel sweep executor (repro.perf.executor)."""

from __future__ import annotations

import pytest

from repro.perf.executor import parallel_map, resolve_jobs


def square(x):
    """Module-level on purpose: process pools must be able to pickle it."""
    return x * x


def failing(x):
    raise ValueError(f"boom on {x}")


def exit_in_worker(task):
    """Kill the worker process for the "boom" item (breaks the pool); the
    serial retry in the parent process completes normally."""
    import os

    item, parent_pid = task
    if item == "boom" and os.getpid() != parent_pid:
        os._exit(1)
    return item


class TestResolveJobs:
    def test_serial_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1

    def test_positive_passthrough(self):
        assert resolve_jobs(4) == 4

    def test_negative_means_cpu_count(self):
        assert resolve_jobs(-1) >= 1


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(10))
        assert parallel_map(square, items) == [square(x) for x in items]

    def test_parallel_results_in_input_order(self):
        items = list(range(20))
        assert parallel_map(square, items, jobs=4) == [square(x) for x in items]

    def test_empty_items(self):
        assert parallel_map(square, [], jobs=4) == []

    def test_single_item_runs_inline(self):
        assert parallel_map(square, [3], jobs=8) == [9]

    def test_unpicklable_function_falls_back_to_serial(self):
        offset = 10
        with pytest.warns(RuntimeWarning, match="not picklable"):
            results = parallel_map(lambda x: x + offset, [1, 2, 3], jobs=2)
        assert results == [11, 12, 13]

    def test_serial_propagates_exceptions(self):
        with pytest.raises(ValueError):
            parallel_map(failing, [1], jobs=1)

    def test_parallel_propagates_exceptions(self):
        with pytest.raises(ValueError):
            parallel_map(failing, [1, 2, 3, 4], jobs=2)

    def test_broken_pool_keeps_completed_results_and_retries_the_rest(self):
        # A worker dying mid-run breaks the pool; parallel_map must keep
        # whatever completed and re-dispatch only the unfinished items
        # instead of rerunning the whole batch serially.
        import os

        pid = os.getpid()
        items = [("a", pid), ("b", pid), ("boom", pid), ("c", pid)]
        with pytest.warns(RuntimeWarning, match="unfinished"):
            results = parallel_map(exit_in_worker, items, jobs=2)
        assert results == ["a", "b", "boom", "c"]

    def test_broken_pool_warning_reports_unfinished_count(self):
        import os
        import warnings as warnings_module

        pid = os.getpid()
        items = [(x, pid) for x in ["a", "b", "c", "d"]] + [("boom", pid)]
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            results = parallel_map(exit_in_worker, items, jobs=2)
        assert results == ["a", "b", "c", "d", "boom"]
        messages = [str(w.message) for w in caught if w.category is RuntimeWarning]
        assert any("of 5 item(s) unfinished" in m for m in messages)
        assert any("completed results are kept" in m for m in messages)

    def test_attempts_out_counts_retries(self):
        # The "boom" item dies in every pool: one initial pool round, one
        # bounded retry round, then the serial fallback in this process.
        import os

        pid = os.getpid()
        items = [("a", pid), ("boom", pid)]
        attempts = []
        with pytest.warns(RuntimeWarning):
            results = parallel_map(
                exit_in_worker, items, jobs=2, retries=1, attempts_out=attempts
            )
        assert results == ["a", "boom"]
        assert attempts[items.index(("boom", pid))] == 3
        assert all(count >= 1 for count in attempts)

    def test_retries_zero_goes_straight_to_serial(self):
        import os

        pid = os.getpid()
        items = [("boom", pid)] * 1 + [("a", pid), ("b", pid)]
        attempts = []
        with pytest.warns(RuntimeWarning):
            results = parallel_map(
                exit_in_worker, items, jobs=2, retries=0, attempts_out=attempts
            )
        assert results == ["boom", "a", "b"]
        # One pool round then serial: never a second pool for the dead item.
        assert attempts[0] == 2

    def test_attempts_out_all_ones_on_clean_runs(self):
        for jobs in (1, 3):
            attempts = []
            assert parallel_map(
                square, [1, 2, 3], jobs=jobs, attempts_out=attempts
            ) == [1, 4, 9]
            assert attempts == [1, 1, 1]
