"""Tests for the indexed routing engine (repro.perf.route_engine)."""

import pytest

from repro.errors import RouteError, TopologyError
from repro.model.channels import Link
from repro.model.topology import Topology
from repro.perf.route_engine import IndexedRouter, SwitchGraph


@pytest.fixture
def square() -> Topology:
    """A bidirectional square A-B-C-D-A."""
    topo = Topology("square")
    topo.add_switches(["A", "B", "C", "D"])
    topo.add_bidirectional_link("A", "B")
    topo.add_bidirectional_link("B", "C")
    topo.add_bidirectional_link("C", "D")
    topo.add_bidirectional_link("D", "A")
    return topo


class TestSwitchGraph:
    def test_ids_follow_sorted_name_order(self, square):
        graph = SwitchGraph(square)
        assert graph.switches == ["A", "B", "C", "D"]
        assert [graph.switch_id(s) for s in "ABCD"] == [0, 1, 2, 3]

    def test_adjacency_sorted_by_link_order(self, square):
        graph = SwitchGraph(square)
        a_out = [graph.links[lid].dst for _, lid in graph.out[graph.switch_id("A")]]
        assert a_out == sorted(a_out)

    def test_unknown_switch_raises(self, square):
        graph = SwitchGraph(square)
        with pytest.raises(TopologyError):
            graph.switch_id("NOPE")

    def test_shortest_path_same_node_is_empty(self, square):
        graph = SwitchGraph(square)
        assert graph.shortest_path(0, 0) == []

    def test_shortest_path_prefers_lexicographic_tie(self, square):
        # A->C has two 2-hop paths (via B or via D); B must win.
        graph = SwitchGraph(square)
        route = graph.route_between("A", "C")
        assert route.switches == ["A", "B", "C"]

    def test_weights_reroute(self, square):
        graph = SwitchGraph(square)
        graph.set_weights({Link("A", "B"): 10.0, Link("B", "C"): 10.0})
        route = graph.route_between("A", "C")
        assert route.switches == ["A", "D", "C"]

    def test_set_weights_resets_previous_values(self, square):
        graph = SwitchGraph(square)
        graph.set_weights({Link("A", "B"): 10.0, Link("B", "C"): 10.0})
        graph.set_weights({})
        route = graph.route_between("A", "C")
        assert route.switches == ["A", "B", "C"]

    def test_unreachable_returns_none(self):
        topo = Topology("split")
        topo.add_switches(["A", "B"])
        graph = SwitchGraph(topo)
        assert graph.shortest_path(0, 1) is None
        assert graph.route_between("A", "B") is None

    def test_directed_links_are_respected(self):
        topo = Topology("oneway")
        topo.add_switches(["A", "B", "C"])
        topo.add_link("A", "B")
        topo.add_link("B", "C")
        topo.add_link("C", "A")
        graph = SwitchGraph(topo)
        # C is reachable from A only the long way round.
        assert graph.route_between("A", "C").switches == ["A", "B", "C"]
        assert graph.route_between("C", "B").switches == ["C", "A", "B"]

    def test_parallel_links_pick_cheapest_then_lowest_index(self):
        topo = Topology("parallel")
        topo.add_switches(["A", "B"])
        expensive = topo.add_link("A", "B", index=0)
        cheap = topo.add_link("A", "B", index=1)
        graph = SwitchGraph(topo)
        graph.set_weights({expensive: 5.0, cheap: 1.0})
        assert graph.route_between("A", "B").links == (cheap,)
        # Equal weights: the lower parallel index wins, like the legacy
        # heap's link-tuple tie-break.
        graph.set_weights({})
        assert graph.route_between("A", "B").links == (expensive,)


class TestIndexedRouter:
    def test_same_switch_pair_rejected(self, square):
        graph = SwitchGraph(square)
        with pytest.raises(RouteError, match="no network route is needed"):
            graph.route_between("A", "A")
        with pytest.raises(RouteError, match="no network route is needed"):
            IndexedRouter(square).route("A", "A")

    def test_unreachable_raises_route_error(self):
        topo = Topology("split")
        topo.add_switches(["A", "B"])
        router = IndexedRouter(topo)
        with pytest.raises(RouteError, match="no path"):
            router.route("A", "B")

    def test_commit_reweights_only_touched_links(self, square):
        router = IndexedRouter(square, congestion_factor=0.5, total_bandwidth=100.0)
        route = router.route("A", "C")
        router.commit(route, 100.0)
        graph = router.graph
        touched = {graph.link_id[link] for link in route.links}
        for lid in range(graph.link_count):
            if lid in touched:
                assert graph.weight[lid] == pytest.approx(1.5)
            else:
                assert graph.weight[lid] == 1.0

    def test_congestion_spreads_flows(self, square):
        router = IndexedRouter(square, congestion_factor=0.5, total_bandwidth=100.0)
        first = router.route("A", "C")
        router.commit(first, 100.0)
        second = router.route("A", "C")
        assert first.switches == ["A", "B", "C"]
        assert second.switches == ["A", "D", "C"]

    def test_zero_factor_never_touches_weights(self, square):
        router = IndexedRouter(square, congestion_factor=0.0, total_bandwidth=100.0)
        router.commit(router.route("A", "C"), 100.0)
        assert all(w == 1.0 for w in router.graph.weight)
