"""Context forking: ``design.copy()`` seeds the copy's DesignContext.

The removal engine runs on a copy of the input design; before the fork a
run on a copy rebuilt the CDG index from the route set every time.  Now
``copy()`` clones a synchronised index from the source design's context
(when the link sets are equal), and the clone is fully independent — a
removal run mutating the copy must never corrupt the source's state.
"""

from __future__ import annotations

from repro.core.cdg import build_cdg
from repro.core.removal import remove_deadlocks
from repro.perf.cdg_index import CDGIndex
from repro.perf.design_context import DesignContext, counters


class TestCdgIndexClone:
    def test_clone_matches_original(self, ring_design_fixture):
        index = CDGIndex.from_routes(ring_design_fixture.routes)
        clone = index.clone()
        clone.verify_against(build_cdg(ring_design_fixture))

    def test_clone_is_independent(self, ring_design_fixture):
        routes = ring_design_fixture.routes
        index = CDGIndex.from_routes(routes)
        clone = index.clone()
        flow_name, route = routes.items()[0]
        clone.remove_route(flow_name, route.channels)
        # The original still verifies against the unmodified design.
        index.verify_against(build_cdg(ring_design_fixture))
        assert clone.edge_count <= index.edge_count


class TestForkOnCopy:
    def test_copy_forks_a_synchronised_context(self, ring_design_fixture):
        context = DesignContext.of(ring_design_fixture)
        context.cdg_index()
        counters.reset()
        clone = ring_design_fixture.copy()
        assert counters.contexts_forked == 1
        forked = DesignContext.of(clone)
        assert forked.design is clone
        forked.cdg_index().verify_against(build_cdg(clone))

    def test_copy_without_built_index_does_not_fork(self, ring_design_fixture):
        counters.reset()
        ring_design_fixture.copy()
        assert counters.contexts_forked == 0

    def test_copy_with_stale_index_does_not_fork(self, ring_design_fixture):
        context = DesignContext.of(ring_design_fixture)
        context.cdg_index()
        # Out-of-band route mutation: the source index is now stale.
        flow_name, route = ring_design_fixture.routes.items()[0]
        ring_design_fixture.routes.set_route(flow_name, route)
        counters.reset()
        ring_design_fixture.copy()
        assert counters.contexts_forked == 0

    def test_removal_on_copy_leaves_source_context_intact(self, ring_design_fixture):
        source_context = DesignContext.of(ring_design_fixture)
        source_context.cdg_index()
        result = remove_deadlocks(ring_design_fixture, engine="context")
        assert result.is_deadlock_free
        # The source design's context still describes the *unmodified* routes.
        source_context.cdg_index().verify_against(build_cdg(ring_design_fixture))

    def test_repeated_removal_runs_fork_instead_of_rebuilding(self, ring_design_fixture):
        counters.reset()
        first = remove_deadlocks(ring_design_fixture, engine="context")
        second = remove_deadlocks(ring_design_fixture, engine="context")
        assert counters.contexts_forked == 2
        assert first.actions == second.actions
        assert first.design.routes == second.design.routes

    def test_forked_removal_matches_seed_engine(self, d36_8_design_14sw):
        design = d36_8_design_14sw.copy()
        DesignContext.of(design).cdg_index()
        seed_result = remove_deadlocks(design, engine="rebuild")
        forked_result = remove_deadlocks(design, engine="context", cross_check=True)
        assert forked_result.actions == seed_result.actions
        assert forked_result.design.routes == seed_result.design.routes
