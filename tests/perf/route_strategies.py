"""Shared hypothesis strategies for the perf test modules.

Kept in a separate (uniquely named) helper module because the tests
directory is not a package: pytest puts each test file's directory on
``sys.path``, so both perf test modules import this as a top-level module.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.model.channels import Channel, Link
from repro.model.routes import Route, RouteSet

SWITCHES = [f"S{i}" for i in range(6)]


@st.composite
def random_route(draw) -> Route:
    """A random contiguous walk of 1-6 channels over a 6-switch universe."""
    length = draw(st.integers(min_value=1, max_value=6))
    current = draw(st.sampled_from(SWITCHES))
    channels = []
    for _ in range(length):
        nxt = draw(st.sampled_from([s for s in SWITCHES if s != current]))
        vc = draw(st.integers(min_value=0, max_value=1))
        channels.append(Channel(Link(current, nxt), vc))
        current = nxt
    return Route(channels)


@st.composite
def random_route_sets(draw) -> RouteSet:
    """Random route sets of 1-8 flows."""
    n_flows = draw(st.integers(min_value=1, max_value=8))
    routes = RouteSet()
    for i in range(n_flows):
        routes.set_route(f"f{i}", draw(random_route()))
    return routes
