"""The compiled simulation engine reproduces the legacy engine exactly.

``CompiledSimulator`` must produce **field-identical**
:class:`~repro.simulation.stats.SimulationStats` to the seed object-per-flit
``Simulator`` — delivered flits and packets, the full latency list (order
included), per-channel busy cycles, and the deadlock verdict with the exact
channels on the wait cycle.  The suite sweeps hand-built fixtures, a
hypothesis grid of topology families x scenarios x loads (saturating ones
included), and the SoC benchmarks, and pins the O(1) undelivered-flit
counter of the compiled network to a full state walk.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import simulation_engines, traffic_scenarios
from repro.core.removal import remove_deadlocks
from repro.errors import SimulationError
from repro.examples_data.paper_ring import paper_ring_design
from repro.perf.design_context import counters
from repro.perf.sim_engine import CompiledNetwork, CompiledSimulator, SimulationTemplate
from repro.simulation.simulator import SimulationConfig, Simulator, simulate_design
from repro.simulation.stats import SimulationStats
from repro.synthesis.regular import mesh_design, ring_design

SCENARIOS = ("flows", "uniform", "hotspot", "transpose", "bursty")


def _run_both(design, config, max_cycles):
    legacy = Simulator(design, config).run(max_cycles)
    compiled = CompiledSimulator(design, config).run(max_cycles)
    return legacy, compiled


def assert_stats_identical(legacy: SimulationStats, compiled: SimulationStats):
    for name in SimulationStats.__dataclass_fields__:
        assert getattr(compiled, name) == getattr(legacy, name), name


class TestRegistry:
    def test_both_engines_registered(self):
        assert set(simulation_engines.names()) >= {"compiled", "legacy"}

    def test_all_scenarios_registered(self):
        assert set(traffic_scenarios.names()) >= set(SCENARIOS)


class TestFixtureEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_mesh_all_scenarios(self, scenario):
        design = mesh_design(3, 3)
        config = SimulationConfig(
            injection_scale=3.0, seed=2, traffic_scenario=scenario
        )
        legacy, compiled = _run_both(design, config, 600)
        assert_stats_identical(legacy, compiled)
        assert compiled.packets_delivered > 0

    def test_deadlock_verdict_and_channels_identical(self):
        """An unprotected ring under pressure deadlocks identically."""
        design = paper_ring_design()
        config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)
        legacy, compiled = _run_both(design, config, 4000)
        assert legacy.deadlock_detected
        assert_stats_identical(legacy, compiled)
        assert compiled.deadlocked_channels == legacy.deadlocked_channels
        assert compiled.deadlock_cycle == legacy.deadlock_cycle

    def test_protected_ring_survives_in_both(self):
        design = remove_deadlocks(paper_ring_design()).design
        config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)
        legacy, compiled = _run_both(design, config, 4000)
        assert not compiled.deadlock_detected
        assert_stats_identical(legacy, compiled)

    def test_local_delivery_only_design(self, simple_line_design):
        config = SimulationConfig(injection_scale=2.0, seed=0)
        legacy, compiled = _run_both(simple_line_design, config, 400)
        assert_stats_identical(legacy, compiled)


class TestHypothesisEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        family=st.sampled_from(["ring", "biring", "mesh", "paper", "protected_ring"]),
        size=st.integers(min_value=4, max_value=7),
        scale=st.sampled_from([0.5, 1.5, 4.0, 8.0]),
        depth=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=5),
        scenario=st.sampled_from(SCENARIOS),
    )
    def test_random_runs_identical(self, family, size, scale, depth, seed, scenario):
        if family == "ring":
            design = ring_design(size)
        elif family == "biring":
            design = ring_design(size, bidirectional=True)
        elif family == "mesh":
            design = mesh_design(2, size - 2)
        elif family == "protected_ring":
            design = remove_deadlocks(ring_design(size)).design
        else:
            design = paper_ring_design()
        config = SimulationConfig(
            injection_scale=scale,
            buffer_depth=depth,
            seed=seed,
            traffic_scenario=scenario,
        )
        legacy, compiled = _run_both(design, config, 500)
        assert_stats_identical(legacy, compiled)


class TestCrossCheckFlag:
    def test_cross_check_passes_on_benchmark_design(self, d36_8_design_14sw):
        design = remove_deadlocks(d36_8_design_14sw).design
        stats = simulate_design(
            design,
            max_cycles=300,
            config=SimulationConfig(injection_scale=2.0, seed=0),
            engine="compiled",
            cross_check=True,
        )
        assert stats.packets_delivered > 0

    def test_cross_check_raises_on_divergence(self, small_mesh_design, monkeypatch):
        """A rigged compiled engine must be caught by the stats comparison."""
        original = CompiledSimulator.run

        def rigged(self, max_cycles=10_000, **kwargs):
            stats = original(self, max_cycles, **kwargs)
            stats.flits_delivered += 1
            return stats

        monkeypatch.setattr(CompiledSimulator, "run", rigged)
        with pytest.raises(SimulationError, match="diverged"):
            simulate_design(
                small_mesh_design,
                max_cycles=200,
                config=SimulationConfig(injection_scale=2.0),
                engine="compiled",
                cross_check=True,
            )


class TestCompiledNetworkAccounting:
    def _drive(self, design, config, cycles):
        simulator = CompiledSimulator(design, config)
        network = simulator.network
        for cycle in range(cycles):
            simulator._inject_new_packets(cycle)
            network.step(cycle, simulator.stats)
            # The O(1) counters must agree with a full walk at every cycle.
            buffered, pending = network.count_flits_by_walk()
            assert network.flits_in_network() == buffered
            assert network.flits_pending_injection() == pending
            assert network.undelivered_flits == buffered + pending
        return network

    def test_undelivered_flits_matches_full_walk(self):
        design = mesh_design(3, 3)
        config = SimulationConfig(injection_scale=4.0, buffer_depth=2, seed=3)
        self._drive(design, config, 300)

    def test_undelivered_flits_matches_walk_under_deadlock(self):
        design = paper_ring_design()
        config = SimulationConfig(injection_scale=8.0, buffer_depth=2, seed=1)
        self._drive(design, config, 500)

    def test_undelivered_reaches_zero_after_drain(self, small_mesh_design):
        config = SimulationConfig(injection_scale=1.0, seed=0)
        simulator = CompiledSimulator(small_mesh_design, config)
        simulator.run(300)
        buffered, pending = simulator.network.count_flits_by_walk()
        assert simulator.network.undelivered_flits == buffered + pending == 0

    def test_inject_unrouted_flow_raises(self, small_mesh_design):
        from repro.simulation.flit import Packet

        design = small_mesh_design.copy()
        victim = next(
            flow.name
            for flow in design.traffic.flows
            if design.switch_of(flow.src) != design.switch_of(flow.dst)
        )
        design.routes.remove_route(victim)
        network = CompiledNetwork(design)
        packet = Packet(
            packet_id=0, flow_name=victim, route=(), size_flits=2, created_cycle=0
        )
        with pytest.raises(SimulationError, match="no injection queue"):
            network.inject(packet)


class TestTemplateCache:
    def test_template_reused_across_runs(self, small_mesh_design):
        counters.reset()
        config = SimulationConfig(injection_scale=1.0)
        CompiledSimulator(small_mesh_design, config).run(50)
        CompiledSimulator(small_mesh_design, config).run(50)
        assert counters.sim_template_builds == 1
        assert counters.sim_template_reuses >= 1

    def test_template_rebuilt_after_route_change(self, small_ring_design):
        SimulationTemplate.of(small_ring_design)
        protected = remove_deadlocks(small_ring_design, in_place=True).design
        fresh = SimulationTemplate.of(protected)
        assert fresh.routes_version == protected.routes.version
        # The stale template must not have been served.
        assert fresh.channel_count == protected.topology.channel_count
