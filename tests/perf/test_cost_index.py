"""Property tests: the int-indexed cost engine equals the reference builder.

The ``"context"`` removal engine chooses break directions from
:class:`repro.perf.cost_index.CycleCostEngine`, which derives both cost
tables of a cycle from one pass over interned channel-id arrays.  These
tests replay random topologies through the indexed engine and through
:func:`repro.core.cost.build_cost_table` (the seed path) and require
field-for-field identical tables — and, end to end, identical
:class:`~repro.core.report.BreakAction` sequences.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.cdg import build_cdg
from repro.core.cost import BACKWARD, FORWARD, best_break, build_cost_table
from repro.core.cycles import find_all_cycles
from repro.core.removal import remove_deadlocks
from repro.errors import RemovalError
from repro.model.channels import Channel, Link
from repro.model.design import NocDesign
from repro.model.routes import Route, RouteSet
from repro.model.topology import Topology
from repro.model.traffic import CommunicationGraph
from repro.perf.cost_index import CycleCostEngine, build_cost_tables

from route_strategies import random_route_sets


def _assert_tables_equal(mine, reference):
    assert mine.direction == reference.direction
    assert mine.cycle == reference.cycle
    assert mine.edges == reference.edges
    assert mine.flow_names == reference.flow_names
    assert mine.entries == reference.entries
    assert mine.max_costs == reference.max_costs
    assert mine.best_cost == reference.best_cost
    assert mine.best_position == reference.best_position
    assert mine == reference


class TestTableEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(routes=random_route_sets())
    def test_matches_reference_on_every_cycle(self, routes):
        """Forward and backward tables equal the seed builder's on every
        elementary cycle of the random route set's CDG."""
        cycles = find_all_cycles(build_cdg(routes), limit=50)
        if not cycles:
            return
        engine = CycleCostEngine.from_routes(routes)
        for cycle in cycles:
            forward, backward = engine.tables(cycle)
            _assert_tables_equal(forward, build_cost_table(cycle, routes, FORWARD))
            _assert_tables_equal(backward, build_cost_table(cycle, routes, BACKWARD))

    @settings(max_examples=100, deadline=None)
    @given(routes=random_route_sets())
    def test_best_break_matches_reference(self, routes):
        """The (direction, cost, position) choice — forward wins ties —
        equals :func:`repro.core.cost.best_break` exactly."""
        cycles = find_all_cycles(build_cdg(routes), limit=50)
        if not cycles:
            return
        engine = CycleCostEngine.from_routes(routes)
        for cycle in cycles:
            direction, cost, position, table = engine.best_break(cycle)
            ref_direction, ref_cost, ref_position, ref_table = best_break(cycle, routes)
            assert (direction, cost, position) == (ref_direction, ref_cost, ref_position)
            _assert_tables_equal(table, ref_table)

    def test_rejects_degenerate_cycle(self):
        routes = RouteSet()
        link = Link("A", "B")
        routes.set_route("f0", Route([Channel(link, 0)]))
        engine = CycleCostEngine.from_routes(routes)
        with pytest.raises(RemovalError):
            engine.tables([Channel(link, 0)])

    def test_rejects_cycle_foreign_to_routes(self):
        routes = RouteSet()
        routes.set_route(
            "f0", Route([Channel(Link("A", "B"), 0), Channel(Link("B", "C"), 0)])
        )
        foreign = [Channel(Link("X", "Y"), 0), Channel(Link("Y", "X"), 0)]
        with pytest.raises(RemovalError, match="no flow creates any dependency"):
            build_cost_tables(foreign, routes)


def _ring_design(n_switches: int = 4) -> NocDesign:
    """A unidirectional ring with one all-the-way-around flow per switch —
    the classic cyclic-CDG example the paper opens with."""
    topology = Topology("ring")
    switches = [f"s{i}" for i in range(n_switches)]
    topology.add_switches(switches)
    links = []
    for i in range(n_switches):
        links.append(topology.add_link(switches[i], switches[(i + 1) % n_switches]))
    traffic = CommunicationGraph("ring_traffic")
    core_map = {}
    for i, switch in enumerate(switches):
        core = f"c{i}"
        traffic.add_core(core)
        core_map[core] = switch
    routes = RouteSet()
    for i in range(n_switches):
        src, dst = f"c{i}", f"c{(i + n_switches - 1) % n_switches}"
        traffic.add_flow(f"flow{i}", src, dst, bandwidth=10.0)
        channels = [
            Channel(links[(i + k) % n_switches], 0) for k in range(n_switches - 1)
        ]
        routes.set_route(f"flow{i}", Route(channels))
    return NocDesign(
        name="ring", topology=topology, traffic=traffic, core_map=core_map, routes=routes
    )


class TestEndToEndActionEquality:
    def test_context_engine_reproduces_seed_actions_on_ring(self):
        design = _ring_design(5)
        seed_result = remove_deadlocks(design, engine="rebuild")
        context_result = remove_deadlocks(design, engine="context", cross_check=True)
        assert context_result.actions == seed_result.actions
        assert context_result.design.routes == seed_result.design.routes

    @pytest.mark.parametrize("policy", ["best", "forward", "backward"])
    def test_direction_policies_match_seed_path(self, policy):
        design = _ring_design(4)
        seed_result = remove_deadlocks(
            design, engine="rebuild", direction_policy=policy
        )
        context_result = remove_deadlocks(
            design, engine="context", direction_policy=policy, cross_check=True
        )
        assert context_result.actions == seed_result.actions
        assert context_result.design.routes == seed_result.design.routes
