"""Property tests: the incremental CDGIndex is equivalent to a fresh build.

The central safety property of the performance core: at every point of an
arbitrary add/replace/remove route history, :class:`repro.perf.cdg_index.CDGIndex`
holds exactly the graph ``build_cdg`` would produce from the current routes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from route_strategies import random_route, random_route_sets

from repro.core.cdg import build_cdg
from repro.errors import DesignError
from repro.model.channels import Channel, Link
from repro.perf.cdg_index import CDGIndex, channel_sort_key

#: The equivalence property runs on >= 200 random cases.
EQUIVALENCE_SETTINGS = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_index_matches(index: CDGIndex, routes: RouteSet) -> None:
    """The index must be byte-equivalent to a from-scratch build."""
    fresh = build_cdg(routes)
    index.verify_against(fresh)
    assert index.vertex_count == fresh.channel_count
    assert index.edge_count == fresh.edge_count
    assert index.is_acyclic() == fresh.is_acyclic()


class TestBuildEquivalence:
    @given(routes=random_route_sets())
    @EQUIVALENCE_SETTINGS
    def test_fresh_build_matches(self, routes):
        assert_index_matches(CDGIndex.from_routes(routes), routes)

    @given(
        routes=random_route_sets(),
        replacements=st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), random_route()),
            min_size=1,
            max_size=6,
        ),
    )
    @EQUIVALENCE_SETTINGS
    def test_incremental_updates_match_fresh_build(self, routes, replacements):
        """Route replacements applied as deltas stay equivalent to a rebuild."""
        index = CDGIndex.from_routes(routes)
        names = routes.flow_names
        for flow_index, new_route in replacements:
            flow_name = names[flow_index % len(names)]
            old_route = routes.route(flow_name)
            routes.set_route(flow_name, new_route)
            index.apply_route_change(flow_name, old_route.channels, new_route.channels)
            assert_index_matches(index, routes)

    @given(routes=random_route_sets())
    @EQUIVALENCE_SETTINGS
    def test_remove_all_routes_empties_index(self, routes):
        index = CDGIndex.from_routes(routes)
        for flow_name in routes.flow_names:
            index.remove_route(flow_name, routes.route(flow_name).channels)
        assert index.vertex_count == 0
        assert index.edge_count == 0
        assert index.is_acyclic()


def ch(src, dst, vc=0):
    return Channel(Link(src, dst), vc)


class TestDirtyTracking:
    def test_fresh_index_reports_edge_endpoints_dirty(self):
        index = CDGIndex()
        index.add_route("f0", [ch("A", "B"), ch("B", "C")])
        assert index.dirty == {index.intern(ch("A", "B")), index.intern(ch("B", "C"))}

    def test_consume_dirty_clears(self):
        index = CDGIndex()
        index.add_route("f0", [ch("A", "B"), ch("B", "C")])
        assert index.consume_dirty()
        assert index.dirty == set()

    def test_shared_edge_only_dirty_when_structure_changes(self):
        """Adding a second flow on an existing edge does not dirty anything."""
        index = CDGIndex()
        index.add_route("f0", [ch("A", "B"), ch("B", "C")])
        index.consume_dirty()
        index.add_route("f1", [ch("A", "B"), ch("B", "C")])
        assert index.dirty == set()
        # Removing one of the two flows keeps the edge: still clean.
        index.remove_route("f0", [ch("A", "B"), ch("B", "C")])
        assert index.dirty == set()
        # Removing the last flow drops the edge: endpoints become dirty.
        index.remove_route("f1", [ch("A", "B"), ch("B", "C")])
        assert index.dirty == {index.intern(ch("A", "B")), index.intern(ch("B", "C"))}


class TestVertexLifecycle:
    def test_unused_channel_leaves_vertex_set(self):
        index = CDGIndex()
        index.add_route("f0", [ch("A", "B"), ch("B", "C")])
        index.remove_route("f0", [ch("A", "B"), ch("B", "C")])
        assert index.vertex_count == 0
        # The id stays interned for cheap revival.
        assert not index.is_live(index.intern(ch("A", "B")))

    def test_unbalanced_remove_raises(self):
        index = CDGIndex()
        index.add_route("f0", [ch("A", "B"), ch("B", "C")])
        with pytest.raises(DesignError):
            index.remove_route("f1", [ch("A", "B"), ch("B", "C")])

    def test_sorted_views_follow_channel_order(self):
        index = CDGIndex()
        # Intern out of sort order on purpose.
        index.add_route("f0", [ch("C", "B"), ch("B", "A")])
        index.add_route("f1", [ch("A", "B", 1), ch("B", "C")])
        index.add_route("f2", [ch("A", "B", 0), ch("B", "C")])
        vertices = [index.channel_of(i) for i in index.sorted_vertices()]
        assert vertices == sorted(vertices)
        b_id = index.intern(ch("B", "C"))
        # ch("B","C") has predecessors only; its successor list is empty.
        assert index.sorted_successors(b_id) == ()
        a0 = index.intern(ch("A", "B", 0))
        succ = [index.channel_of(i) for i in index.sorted_successors(a0)]
        assert succ == sorted(succ)

    def test_channel_sort_key_matches_dataclass_order(self):
        channels = [ch("B", "A"), ch("A", "C", 1), ch("A", "B"), ch("A", "C", 0)]
        assert sorted(channels) == sorted(channels, key=channel_sort_key)

    def test_to_cdg_round_trip(self):
        index = CDGIndex()
        index.add_route("f0", [ch("A", "B"), ch("B", "C"), ch("C", "A")])
        cdg = index.to_cdg()
        assert cdg.channel_count == 3
        assert cdg.edge_count == 2
        assert cdg.flows_on_edge(ch("A", "B"), ch("B", "C")) == frozenset({"f0"})
