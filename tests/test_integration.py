"""End-to-end integration tests: the full pipelines a user would run."""

import pytest

from repro import (
    SimulationConfig,
    SynthesisConfig,
    apply_resource_ordering,
    build_cdg,
    compare_methods,
    estimate_area,
    estimate_power,
    get_benchmark,
    load_design,
    paper_ring_design,
    remove_deadlocks,
    save_design,
    simulate_design,
    synthesize_design,
    validate_design,
)


class TestPaperWorkedExample:
    """The complete Figures 1-4 story in one test."""

    def test_ring_example_end_to_end(self):
        design = paper_ring_design()
        cdg = build_cdg(design)
        assert not cdg.is_acyclic()

        result = remove_deadlocks(design)
        assert result.added_vc_count == 1
        assert build_cdg(result.design).is_acyclic()

        ordering = apply_resource_ordering(design)
        assert ordering.extra_vcs == 3
        assert result.added_vc_count < ordering.extra_vcs

        removal_area = estimate_area(result.design).total_area_mm2
        ordering_area = estimate_area(ordering.design).total_area_mm2
        assert removal_area < ordering_area


class TestBenchmarkPipeline:
    """Benchmark -> synthesis -> removal -> power/area -> simulation."""

    def test_full_pipeline_on_d36_8(self, tmp_path):
        traffic = get_benchmark("D36_8")
        design = synthesize_design(traffic, SynthesisConfig(n_switches=12))
        validate_design(design)

        result = remove_deadlocks(design)
        assert build_cdg(result.design).is_acyclic()

        power = estimate_power(result.design)
        area = estimate_area(result.design)
        assert power.total_power_mw > 0
        assert area.total_area_mm2 > 0

        # The design survives a serialization round trip...
        path = save_design(result.design, tmp_path / "d36_8_fixed.json")
        reloaded = load_design(path)
        assert build_cdg(reloaded).is_acyclic()

        # ...and runs deadlock free in the wormhole simulator.
        stats = simulate_design(
            reloaded,
            max_cycles=1500,
            config=SimulationConfig(injection_scale=1.0, seed=0),
        )
        assert not stats.deadlock_detected
        assert stats.packets_delivered > 0

    def test_comparison_matches_component_calls(self):
        comparison = compare_methods("D26_media", 10)
        standalone = remove_deadlocks(comparison.unprotected)
        assert comparison.removal_extra_vcs == standalone.added_vc_count


class TestCrossMethodConsistency:
    def test_both_methods_protect_the_same_design(self):
        traffic = get_benchmark("D36_6")
        design = synthesize_design(traffic, SynthesisConfig(n_switches=12))
        removal = remove_deadlocks(design)
        ordering = apply_resource_ordering(design)
        assert build_cdg(removal.design).is_acyclic()
        assert build_cdg(ordering.design).is_acyclic()
        assert removal.added_vc_count <= ordering.extra_vcs
        # Physical topology (links) is identical in all three variants.
        assert sorted(removal.design.topology.links) == sorted(design.topology.links)
        assert sorted(ordering.design.topology.links) == sorted(design.topology.links)

    def test_simulation_agrees_with_cdg_on_protected_designs(self):
        """Runtime check of the paper's core guarantee on a small design."""
        design = paper_ring_design()
        config = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)

        unprotected_stats = simulate_design(design, max_cycles=4000, config=config)
        assert unprotected_stats.deadlock_detected

        for protected in (
            remove_deadlocks(design).design,
            apply_resource_ordering(design).design,
        ):
            stats = simulate_design(protected, max_cycles=4000, config=config)
            assert not stats.deadlock_detected
