"""Tests for the physical-channel resource mode of the removal algorithm.

Section 1 of the paper: "please note that is also possible to add physical
channels if the NoC architecture does not support VCs".
"""

import pytest

from repro.core.breaker import RESOURCE_PHYSICAL, break_cycle
from repro.core.cdg import build_cdg
from repro.core.removal import remove_deadlocks
from repro.errors import RemovalError
from repro.examples_data.paper_ring import paper_ring_cycle
from repro.model.validation import validate_design
from repro.power.estimator import estimate_area, estimate_power


class TestPhysicalBreak:
    def test_break_adds_parallel_link_not_vc(self, ring_design_fixture):
        before_links = ring_design_fixture.topology.link_count
        action = break_cycle(
            ring_design_fixture, paper_ring_cycle(), 0, "forward",
            resource_mode=RESOURCE_PHYSICAL,
        )
        topology = ring_design_fixture.topology
        assert topology.link_count == before_links + 1
        assert topology.extra_vc_count == 0
        assert topology.extra_parallel_link_count == 1
        new_channel = next(iter(action.channels_added.values()))
        assert new_channel.link.index == 1
        assert new_channel.vc == 0

    def test_break_removes_cycle_and_keeps_design_valid(self, ring_design_fixture):
        break_cycle(
            ring_design_fixture, paper_ring_cycle(), 0, "forward",
            resource_mode=RESOURCE_PHYSICAL,
        )
        assert build_cdg(ring_design_fixture).is_acyclic()
        validate_design(ring_design_fixture)

    def test_unknown_resource_mode_rejected(self, ring_design_fixture):
        with pytest.raises(RemovalError):
            break_cycle(
                ring_design_fixture, paper_ring_cycle(), 0, "forward",
                resource_mode="quantum",
            )


class TestPhysicalRemoval:
    def test_ring_removal_with_physical_links(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture, resource_mode="physical")
        assert build_cdg(result.design).is_acyclic()
        assert result.added_vc_count == 1  # one channel added, as in VC mode
        assert result.design.topology.extra_parallel_link_count == 1
        assert result.design.topology.extra_vc_count == 0
        validate_design(result.design)

    def test_unknown_mode_rejected(self, ring_design_fixture):
        with pytest.raises(RemovalError):
            remove_deadlocks(ring_design_fixture, resource_mode="quantum")

    def test_benchmark_design_with_physical_links(self, d36_8_design_14sw):
        design = d36_8_design_14sw.copy()
        virtual = remove_deadlocks(design)
        physical = remove_deadlocks(design, resource_mode="physical")
        assert build_cdg(physical.design).is_acyclic()
        # The same dependencies get broken, so the channel count matches.
        assert physical.added_vc_count == virtual.added_vc_count
        assert physical.design.topology.extra_parallel_link_count == (
            physical.added_vc_count
        )
        validate_design(physical.design)

    def test_physical_mode_costs_more_area_than_virtual(self, d36_8_design_14sw):
        """The reason the paper prefers VCs: a parallel physical link adds
        switch ports (crossbar, allocator) on top of the buffer."""
        design = d36_8_design_14sw.copy()
        virtual = remove_deadlocks(design)
        physical = remove_deadlocks(design, resource_mode="physical")
        assert (
            estimate_area(physical.design).total_area_mm2
            >= estimate_area(virtual.design).total_area_mm2
        )
        assert (
            estimate_power(physical.design).total_power_mw
            >= estimate_power(virtual.design).total_power_mw
        )

    def test_physical_design_simulates_deadlock_free(self, ring_design_fixture):
        from repro.simulation.simulator import SimulationConfig, simulate_design

        result = remove_deadlocks(ring_design_fixture, resource_mode="physical")
        stats = simulate_design(
            result.design,
            max_cycles=4000,
            config=SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1),
        )
        assert not stats.deadlock_detected


class TestParallelLinkTopology:
    def test_add_parallel_link_indices(self, ring_design_fixture):
        topology = ring_design_fixture.topology
        link = topology.links[0]
        first = topology.add_parallel_link(link)
        second = topology.add_parallel_link(link)
        assert first.index == 1
        assert second.index == 2
        assert topology.extra_parallel_link_count == 2

    def test_parallel_link_copies_length(self, ring_design_fixture):
        topology = ring_design_fixture.topology
        link = topology.links[0]
        topology.set_link_length(link, 3.0)
        parallel = topology.add_parallel_link(link)
        assert topology.link_length(parallel) == 3.0

    def test_parallel_of_unknown_link_rejected(self, ring_design_fixture):
        from repro.errors import TopologyError
        from repro.model.channels import Link

        with pytest.raises(TopologyError):
            ring_design_fixture.topology.add_parallel_link(Link("X", "Y"))
