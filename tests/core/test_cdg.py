"""Tests for the channel dependency graph (repro.core.cdg)."""

import pytest

from repro.core.cdg import ChannelDependencyGraph, build_cdg
from repro.errors import DesignError
from repro.examples_data.paper_ring import paper_channel
from repro.model.channels import Channel, Link


def ch(src, dst, vc=0):
    return Channel(Link(src, dst), vc)


class TestConstruction:
    def test_add_dependency_creates_nodes_and_edge(self):
        cdg = ChannelDependencyGraph()
        cdg.add_dependency(ch("A", "B"), ch("B", "C"), "f0")
        assert cdg.channel_count == 2
        assert cdg.edge_count == 1
        assert cdg.has_dependency(ch("A", "B"), ch("B", "C"))

    def test_add_route_creates_all_pairs(self):
        cdg = ChannelDependencyGraph()
        cdg.add_route("f0", [ch("A", "B"), ch("B", "C"), ch("C", "D")])
        assert cdg.edge_count == 2
        assert cdg.channel_count == 3

    def test_single_channel_route_creates_isolated_node(self):
        cdg = ChannelDependencyGraph()
        cdg.add_route("f0", [ch("A", "B")])
        assert cdg.channel_count == 1
        assert cdg.edge_count == 0

    def test_edge_flows_are_accumulated(self):
        cdg = ChannelDependencyGraph()
        cdg.add_dependency(ch("A", "B"), ch("B", "C"), "f0")
        cdg.add_dependency(ch("A", "B"), ch("B", "C"), "f1")
        assert cdg.flows_on_edge(ch("A", "B"), ch("B", "C")) == frozenset({"f0", "f1"})

    def test_flows_on_missing_edge_is_empty(self):
        cdg = ChannelDependencyGraph()
        assert cdg.flows_on_edge(ch("A", "B"), ch("B", "C")) == frozenset()

    def test_self_loop_dependency_rejected(self):
        cdg = ChannelDependencyGraph()
        with pytest.raises(DesignError):
            cdg.add_dependency(ch("A", "B"), ch("A", "B"), "f0")

    def test_sorted_views_track_mutations(self):
        """channels/edges are cached between calls but never stale."""
        cdg = ChannelDependencyGraph()
        cdg.add_route("f0", [ch("B", "C"), ch("C", "D")])
        assert cdg.channels == sorted(cdg.channels)
        first_edges = cdg.edges
        # Mutating the returned lists must not corrupt the cache.
        first_edges.append(("bogus", "entry"))
        assert cdg.edges == [(ch("B", "C"), ch("C", "D"))]
        cdg.add_route("f1", [ch("A", "B"), ch("B", "C")])
        assert cdg.channels == [ch("A", "B"), ch("B", "C"), ch("C", "D")]
        assert cdg.edges == [
            (ch("A", "B"), ch("B", "C")),
            (ch("B", "C"), ch("C", "D")),
        ]


class TestQueries:
    def test_successors_and_predecessors(self):
        cdg = ChannelDependencyGraph()
        cdg.add_route("f0", [ch("A", "B"), ch("B", "C"), ch("C", "D")])
        assert cdg.successors(ch("A", "B")) == [ch("B", "C")]
        assert cdg.predecessors(ch("C", "D")) == [ch("B", "C")]
        assert cdg.out_degree(ch("B", "C")) == 1
        assert cdg.in_degree(ch("B", "C")) == 1

    def test_subgraph_on(self):
        cdg = ChannelDependencyGraph()
        cdg.add_route("f0", [ch("A", "B"), ch("B", "C"), ch("C", "D")])
        sub = cdg.subgraph_on([ch("A", "B"), ch("B", "C")])
        assert sub.channel_count == 2
        assert sub.edge_count == 1

    def test_to_networkx_preserves_structure(self):
        cdg = ChannelDependencyGraph()
        cdg.add_route("f0", [ch("A", "B"), ch("B", "C")])
        graph = cdg.to_networkx()
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1
        assert graph.edges[ch("A", "B"), ch("B", "C")]["flows"] == frozenset({"f0"})


class TestAcyclicity:
    def test_linear_route_is_acyclic(self):
        cdg = ChannelDependencyGraph()
        cdg.add_route("f0", [ch("A", "B"), ch("B", "C"), ch("C", "D")])
        assert cdg.is_acyclic()

    def test_two_flow_cycle_detected(self):
        cdg = ChannelDependencyGraph()
        cdg.add_route("f0", [ch("A", "B"), ch("B", "A")])
        cdg.add_route("f1", [ch("B", "A"), ch("A", "B")])
        assert not cdg.is_acyclic()

    def test_empty_cdg_is_acyclic(self):
        assert ChannelDependencyGraph().is_acyclic()


class TestBuildCdg:
    def test_paper_ring_cdg_matches_figure2(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture)
        # Figure 2: four channels, dependencies L1->L2, L2->L3, L3->L4, L4->L1.
        assert cdg.channel_count == 4
        assert cdg.edge_count == 4
        assert cdg.has_dependency(paper_channel("L1"), paper_channel("L2"))
        assert cdg.has_dependency(paper_channel("L4"), paper_channel("L1"))
        assert not cdg.is_acyclic()

    def test_paper_ring_edge_flow_labels(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture)
        assert cdg.flows_on_edge(paper_channel("L1"), paper_channel("L2")) == frozenset(
            {"F1", "F4"}
        )
        assert cdg.flows_on_edge(paper_channel("L4"), paper_channel("L1")) == frozenset(
            {"F3"}
        )

    def test_build_from_route_set_directly(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture.routes)
        assert cdg.edge_count == 4

    def test_include_unused_channels(self, ring_design_fixture):
        ring_design_fixture.topology.add_virtual_channel(
            ring_design_fixture.topology.links[0]
        )
        cdg = build_cdg(ring_design_fixture, include_unused_channels=True)
        assert cdg.channel_count == ring_design_fixture.topology.channel_count

    def test_mesh_with_xy_routing_is_acyclic(self, small_mesh_design):
        assert build_cdg(small_mesh_design).is_acyclic()

    def test_line_design_is_acyclic(self, simple_line_design):
        assert build_cdg(simple_line_design).is_acyclic()
