"""Tests for removal result records (repro.core.report)."""

from repro.core.removal import remove_deadlocks
from repro.core.report import BreakAction, RemovalResult
from repro.examples_data.paper_ring import paper_channel


class TestBreakAction:
    def test_describe_contains_edge_and_cost(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture)
        action = result.actions[0]
        text = action.describe()
        assert "cost" in text
        assert "->" in text
        assert "VC" in text

    def test_added_vc_count_matches_channels_added(self, ring_design_fixture):
        action = remove_deadlocks(ring_design_fixture).actions[0]
        assert action.added_vc_count == len(action.channels_added)

    def test_cost_table_is_attached(self, ring_design_fixture):
        action = remove_deadlocks(ring_design_fixture).actions[0]
        assert action.cost_table is not None
        assert action.cost_table.best_cost == action.cost


class TestRemovalResult:
    def test_added_vc_count_sums_actions(self, small_ring_design):
        result = remove_deadlocks(small_ring_design)
        assert result.added_vc_count == sum(a.added_vc_count for a in result.actions)

    def test_is_deadlock_free_flag(self, ring_design_fixture):
        assert remove_deadlocks(ring_design_fixture).is_deadlock_free

    def test_empty_result_summary(self, simple_line_design):
        result = remove_deadlocks(simple_line_design)
        assert "already deadlock free" in result.summary()

    def test_manual_construction(self, simple_line_design):
        result = RemovalResult(design=simple_line_design)
        assert result.added_vc_count == 0
        assert result.rerouted_flows == []
        assert result.iterations == 0
