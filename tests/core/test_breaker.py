"""Tests for cycle breaking (repro.core.breaker)."""

import pytest

from repro.core.breaker import (
    break_cycle,
    break_cycle_backward,
    break_cycle_forward,
    flows_creating_dependency,
)
from repro.core.cdg import build_cdg
from repro.core.cost import BACKWARD, FORWARD, build_cost_table
from repro.errors import RemovalError
from repro.examples_data.paper_ring import paper_channel, paper_ring_cycle


class TestFlowsCreatingDependency:
    def test_paper_ring_d1(self, ring_design_fixture):
        edge = (paper_channel("L1"), paper_channel("L2"))
        assert flows_creating_dependency(ring_design_fixture, edge) == ["F1", "F4"]

    def test_paper_ring_d4(self, ring_design_fixture):
        edge = (paper_channel("L4"), paper_channel("L1"))
        assert flows_creating_dependency(ring_design_fixture, edge) == ["F3"]

    def test_unrelated_edge_has_no_flows(self, ring_design_fixture):
        edge = (paper_channel("L1"), paper_channel("L3"))
        assert flows_creating_dependency(ring_design_fixture, edge) == []


class TestForwardBreak:
    def test_break_d1_adds_one_vc_and_reroutes_f1_f4(self, ring_design_fixture):
        action = break_cycle_forward(ring_design_fixture, paper_ring_cycle(), 0)
        assert action.direction == FORWARD
        assert action.cost == 1
        assert action.added_vc_count == 1
        assert action.flows_rerouted == ("F1", "F4")
        # The new channel is L1 with VC 1.
        new_channel = next(iter(action.channels_added.values()))
        assert new_channel.link == paper_channel("L1").link
        assert new_channel.vc == 1

    def test_break_d1_removes_the_cycle(self, ring_design_fixture):
        break_cycle_forward(ring_design_fixture, paper_ring_cycle(), 0)
        assert build_cdg(ring_design_fixture).is_acyclic()

    def test_break_d4_forward_duplicates_l4(self, ring_design_fixture):
        """Breaking D4 = (L4, L1) forward duplicates the channel before the
        edge (L4) and reroutes F3 onto it."""
        action = break_cycle_forward(ring_design_fixture, paper_ring_cycle(), 3)
        assert action.flows_rerouted == ("F3",)
        assert action.added_vc_count == 1
        rerouted = ring_design_fixture.routes.route("F3")
        assert rerouted.channels[0].link == paper_channel("L4").link
        assert rerouted.channels[0].vc == 1
        assert build_cdg(ring_design_fixture).is_acyclic()

    def test_break_d4_backward_reroutes_f3_like_figure3(self, ring_design_fixture):
        """The paper's Figures 3/4: break D4 by adding L1' and rerouting F3
        onto it — in our terms a backward break of the closing dependency."""
        action = break_cycle_backward(ring_design_fixture, paper_ring_cycle(), 3)
        assert action.flows_rerouted == ("F3",)
        assert action.added_vc_count == 1
        rerouted = ring_design_fixture.routes.route("F3")
        assert rerouted.channels[1].link == paper_channel("L1").link
        assert rerouted.channels[1].vc == 1
        assert build_cdg(ring_design_fixture).is_acyclic()

    def test_break_matches_cost_table(self, ring_design_fixture):
        table = build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, FORWARD)
        action = break_cycle_forward(
            ring_design_fixture, paper_ring_cycle(), table.best_position
        )
        assert action.added_vc_count == table.best_cost

    def test_forward_cost_two_duplicates_two_channels(self, ring_design_fixture):
        """Breaking D2 forward must duplicate L1 and L2 (cost 2 in Table 1)."""
        action = break_cycle_forward(ring_design_fixture, paper_ring_cycle(), 1)
        assert action.cost == 2
        assert action.added_vc_count == 2
        assert build_cdg(ring_design_fixture).is_acyclic()

    def test_topology_gains_the_vcs(self, ring_design_fixture):
        before = ring_design_fixture.topology.extra_vc_count
        action = break_cycle_forward(ring_design_fixture, paper_ring_cycle(), 1)
        after = ring_design_fixture.topology.extra_vc_count
        assert after - before == action.added_vc_count


class TestBackwardBreak:
    def test_break_d2_backward_duplicates_only_l3(self, ring_design_fixture):
        action = break_cycle_backward(ring_design_fixture, paper_ring_cycle(), 1)
        assert action.direction == BACKWARD
        assert action.cost == 1
        assert action.flows_rerouted == ("F1",)
        new_channel = next(iter(action.channels_added.values()))
        assert new_channel.link == paper_channel("L3").link

    def test_backward_break_removes_the_cycle(self, ring_design_fixture):
        break_cycle_backward(ring_design_fixture, paper_ring_cycle(), 1)
        assert build_cdg(ring_design_fixture).is_acyclic()

    def test_backward_matches_cost_table(self, ring_design_fixture):
        table = build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, BACKWARD)
        action = break_cycle_backward(
            ring_design_fixture, paper_ring_cycle(), table.best_position
        )
        assert action.added_vc_count == table.best_cost


class TestSharingAndValidity:
    def test_flows_share_duplicated_channels(self, ring_design_fixture):
        action = break_cycle_forward(ring_design_fixture, paper_ring_cycle(), 0)
        # F1 and F4 both create D1; they must share the single new VC.
        f1 = ring_design_fixture.routes.route("F1")
        f4 = ring_design_fixture.routes.route("F4")
        assert f1.channels[0] == f4.channels[0]
        assert f1.channels[0].vc == 1
        assert action.added_vc_count == 1

    def test_broken_design_remains_valid(self, ring_design_fixture):
        from repro.model.validation import validate_design

        break_cycle_forward(ring_design_fixture, paper_ring_cycle(), 0)
        validate_design(ring_design_fixture)

    def test_unaffected_flows_keep_their_routes(self, ring_design_fixture):
        before = ring_design_fixture.routes.route("F2")
        break_cycle_forward(ring_design_fixture, paper_ring_cycle(), 0)
        assert ring_design_fixture.routes.route("F2") == before


class TestErrors:
    def test_bad_position_rejected(self, ring_design_fixture):
        with pytest.raises(RemovalError):
            break_cycle(ring_design_fixture, paper_ring_cycle(), 9, FORWARD)

    def test_bad_direction_rejected(self, ring_design_fixture):
        with pytest.raises(RemovalError):
            break_cycle(ring_design_fixture, paper_ring_cycle(), 0, "sideways")

    def test_edge_without_flows_rejected(self, ring_design_fixture):
        fake_cycle = [paper_channel("L1"), paper_channel("L3")]
        with pytest.raises(RemovalError):
            break_cycle(ring_design_fixture, fake_cycle, 0, FORWARD)
