"""Tests for the Algorithm 2 cost tables (repro.core.cost).

The headline test reproduces Table 1 of the paper exactly.
"""

import pytest

from repro.core.cdg import build_cdg
from repro.core.cost import (
    BACKWARD,
    FORWARD,
    best_break,
    build_cost_table,
    find_dependency_to_break,
)
from repro.core.cycles import find_smallest_cycle
from repro.errors import RemovalError
from repro.examples_data.paper_ring import (
    paper_channel,
    paper_ring_cycle,
    paper_ring_expected_cost_table,
)
from repro.model.channels import Channel, Link
from repro.model.routes import Route, RouteSet


def ch(src, dst, vc=0):
    return Channel(Link(src, dst), vc)


class TestTable1:
    """Table 1 of the paper: the forward cost table of the ring example."""

    def test_forward_cost_table_matches_paper(self, ring_design_fixture):
        table = build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, FORWARD)
        expected = paper_ring_expected_cost_table()
        assert list(table.flow_names) == ["F1", "F2", "F3", "F4"]
        for flow in ("F1", "F2", "F3", "F4"):
            assert list(table.entries[flow]) == expected[flow], flow
        assert list(table.max_costs) == expected["MAX"]

    def test_forward_best_break_is_cost_one(self, ring_design_fixture):
        cost, pos, table = find_dependency_to_break(
            paper_ring_cycle(), ring_design_fixture.routes, FORWARD
        )
        assert cost == 1
        assert table.max_costs[pos] == 1

    def test_edge_labels_match_paper_columns(self, ring_design_fixture):
        table = build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, FORWARD)
        assert table.edge_labels == ["D1", "D2", "D3", "D4"]
        assert table.edges[0] == (paper_channel("L1"), paper_channel("L2"))

    def test_to_text_contains_max_row(self, ring_design_fixture):
        table = build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, FORWARD)
        text = table.to_text()
        assert "MAX" in text
        assert "D4" in text

    def test_as_matrix_row_order(self, ring_design_fixture):
        table = build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, FORWARD)
        assert table.as_matrix()[0] == [1, 2, 0, 0]


class TestBackward:
    def test_backward_costs_of_ring(self, ring_design_fixture):
        table = build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, BACKWARD)
        # F1 = {L1,L2,L3}: breaking D1 requires duplicating L2 and L3 (cost 2),
        # breaking D2 requires duplicating only L3 (cost 1).
        assert list(table.entries["F1"]) == [2, 1, 0, 0]
        # F2 = {L3,L4}: breaking D3 duplicates L4 only.
        assert list(table.entries["F2"]) == [0, 0, 1, 0]
        # F3 = {L4,L1}: breaking D4 duplicates L1 only.
        assert list(table.entries["F3"]) == [0, 0, 0, 1]
        # F4 = {L1,L2}: breaking D1 duplicates L2 only.
        assert list(table.entries["F4"]) == [1, 0, 0, 0]
        assert list(table.max_costs) == [2, 1, 1, 1]

    def test_backward_best_cost_is_one(self, ring_design_fixture):
        cost, pos, _ = find_dependency_to_break(
            paper_ring_cycle(), ring_design_fixture.routes, BACKWARD
        )
        assert cost == 1
        assert pos in (1, 2, 3)


class TestBestBreak:
    def test_forward_wins_ties(self, ring_design_fixture):
        direction, cost, _pos, _table = best_break(
            paper_ring_cycle(), ring_design_fixture.routes
        )
        assert direction == FORWARD
        assert cost == 1

    def test_backward_chosen_when_cheaper(self):
        # Flow f0 enters the cycle, traverses A->B->C->D and exits; the only
        # other flow closes the cycle D->A.  Breaking the closing dependency
        # (D->A, created by f1) is cheap in both directions, but breaking
        # the D2 dependency (B->C): forward duplicates A,B (cost 2) while
        # backward duplicates C,D... use a flow set where backward is
        # strictly cheaper at the chosen minimum: make f0 enter late.
        routes = RouteSet()
        routes.set_route(
            "f0",
            Route([ch("X", "A"), ch("A", "B"), ch("B", "C"), ch("C", "A")]),
        )
        routes.set_route("f1", Route([ch("C", "A"), ch("A", "B")]))
        cycle = [ch("A", "B"), ch("B", "C"), ch("C", "A")]
        f_cost, _, _ = find_dependency_to_break(cycle, routes, FORWARD)
        b_cost, _, _ = find_dependency_to_break(cycle, routes, BACKWARD)
        direction, cost, _, _ = best_break(cycle, routes)
        assert cost == min(f_cost, b_cost)
        if b_cost < f_cost:
            assert direction == BACKWARD


class TestValidation:
    def test_unknown_direction_rejected(self, ring_design_fixture):
        with pytest.raises(RemovalError):
            build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, "sideways")

    def test_single_channel_cycle_rejected(self, ring_design_fixture):
        with pytest.raises(RemovalError):
            build_cost_table([paper_channel("L1")], ring_design_fixture.routes)

    def test_cycle_unrelated_to_routes_rejected(self, ring_design_fixture):
        foreign = [ch("Z1", "Z2"), ch("Z2", "Z1")]
        with pytest.raises(RemovalError):
            build_cost_table(foreign, ring_design_fixture.routes)

    def test_flows_creating_reports_nonzero_columns(self, ring_design_fixture):
        table = build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, FORWARD)
        assert table.flows_creating(0) == ["F1", "F4"]
        assert table.flows_creating(3) == ["F3"]

    def test_cost_of_accessor(self, ring_design_fixture):
        table = build_cost_table(paper_ring_cycle(), ring_design_fixture.routes, FORWARD)
        assert table.cost_of("F1", 1) == 2


class TestGeneralCycles:
    def test_cost_counts_all_cycle_channels_before_edge(self):
        """Figure 7 situation: a flow using several cycle channels before the
        broken edge must duplicate all of them, not just the last one."""
        routes = RouteSet()
        routes.set_route(
            "f0",
            Route([ch("A", "B"), ch("B", "C"), ch("C", "D"), ch("D", "A")]),
        )
        routes.set_route("f1", Route([ch("D", "A"), ch("A", "B")]))
        cycle = [ch("A", "B"), ch("B", "C"), ch("C", "D"), ch("D", "A")]
        table = build_cost_table(cycle, routes, FORWARD)
        # f0 creates D1 (cost 1), D2 (cost 2) and D3 (cost 3).
        assert list(table.entries["f0"]) == [1, 2, 3, 0]

    def test_smallest_cycle_feeds_cost_table(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture)
        cycle = find_smallest_cycle(cdg)
        table = build_cost_table(cycle, ring_design_fixture.routes, FORWARD)
        assert min(table.max_costs) == 1
