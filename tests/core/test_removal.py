"""Tests for the Algorithm 1 driver (repro.core.removal)."""

import pytest

from repro.core.cdg import build_cdg
from repro.core.removal import (
    DeadlockRemover,
    is_deadlock_free,
    remove_deadlocks,
)
from repro.errors import ConvergenceError, RemovalError
from repro.model.validation import validate_design


class TestPaperRing:
    def test_removal_yields_acyclic_cdg(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture)
        assert build_cdg(result.design).is_acyclic()

    def test_single_vc_is_enough(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture)
        assert result.added_vc_count == 1
        assert result.iterations == 1
        assert result.initial_cycle_count == 1

    def test_input_design_untouched_by_default(self, ring_design_fixture):
        remove_deadlocks(ring_design_fixture)
        assert ring_design_fixture.extra_vc_count == 0
        assert not build_cdg(ring_design_fixture).is_acyclic()

    def test_in_place_removal_mutates_input(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture, in_place=True)
        assert result.design is ring_design_fixture
        assert ring_design_fixture.extra_vc_count == 1

    def test_result_design_is_valid(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture)
        validate_design(result.design)

    def test_summary_mentions_vcs(self, ring_design_fixture):
        summary = remove_deadlocks(ring_design_fixture).summary()
        assert "virtual channels added" in summary
        assert "iteration 1" in summary

    def test_rerouted_flows_reported(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture)
        assert set(result.rerouted_flows) <= {"F1", "F2", "F3", "F4"}
        assert len(result.rerouted_flows) >= 1


class TestAlreadyDeadlockFree:
    def test_line_needs_no_changes(self, simple_line_design):
        result = remove_deadlocks(simple_line_design)
        assert result.initially_deadlock_free
        assert result.added_vc_count == 0
        assert result.iterations == 0

    def test_mesh_needs_no_changes(self, small_mesh_design):
        result = remove_deadlocks(small_mesh_design)
        assert result.added_vc_count == 0

    def test_is_deadlock_free_helper(self, simple_line_design, ring_design_fixture):
        assert is_deadlock_free(simple_line_design)
        assert not is_deadlock_free(ring_design_fixture)


class TestLargerDesigns:
    def test_small_ring_design_removal(self, small_ring_design):
        assert not is_deadlock_free(small_ring_design)
        result = remove_deadlocks(small_ring_design)
        assert build_cdg(result.design).is_acyclic()
        assert result.added_vc_count >= 1
        validate_design(result.design)

    def test_synthesized_d36_8_removal(self, d36_8_design_14sw):
        design = d36_8_design_14sw.copy()
        result = remove_deadlocks(design)
        assert build_cdg(result.design).is_acyclic()
        validate_design(result.design)
        # The headline claim: far fewer VCs than one per route hop.
        assert result.added_vc_count < design.routes.total_hop_count() / 2

    def test_removal_is_deterministic(self, small_ring_design):
        first = remove_deadlocks(small_ring_design)
        second = remove_deadlocks(small_ring_design)
        assert first.added_vc_count == second.added_vc_count
        assert first.design.routes == second.design.routes


class TestOptions:
    def test_unknown_cycle_selection_rejected(self):
        with pytest.raises(RemovalError):
            DeadlockRemover(cycle_selection="weird")

    def test_unknown_direction_policy_rejected(self):
        with pytest.raises(RemovalError):
            DeadlockRemover(direction_policy="weird")

    def test_forward_only_policy(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture, direction_policy="forward")
        assert all(action.direction == "forward" for action in result.actions)
        assert build_cdg(result.design).is_acyclic()

    def test_backward_only_policy(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture, direction_policy="backward")
        assert all(action.direction == "backward" for action in result.actions)
        assert build_cdg(result.design).is_acyclic()

    def test_largest_cycle_selection(self, small_ring_design):
        result = remove_deadlocks(small_ring_design, cycle_selection="largest")
        assert build_cdg(result.design).is_acyclic()

    def test_random_cycle_selection_with_seed(self, small_ring_design):
        first = remove_deadlocks(small_ring_design, cycle_selection="random", seed=7)
        second = remove_deadlocks(small_ring_design, cycle_selection="random", seed=7)
        assert first.added_vc_count == second.added_vc_count
        assert build_cdg(first.design).is_acyclic()

    def test_iteration_cap_raises_convergence_error(self, small_ring_design):
        with pytest.raises(ConvergenceError):
            remove_deadlocks(small_ring_design, max_iterations=0)

    def test_on_iteration_callback(self, ring_design_fixture):
        seen = []
        remove_deadlocks(ring_design_fixture, on_iteration=seen.append)
        assert len(seen) == 1
        assert seen[0].iteration == 1

    def test_skip_initial_cycle_count(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture, count_initial_cycles=False)
        assert result.initial_cycle_count == 0
        assert result.added_vc_count == 1

    def test_validation_can_be_disabled(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture, validate=False)
        assert result.added_vc_count == 1

    def test_runtime_is_recorded(self, ring_design_fixture):
        result = remove_deadlocks(ring_design_fixture)
        assert result.runtime_seconds > 0


class TestComparisonWithOrdering:
    def test_removal_cheaper_than_ordering_on_ring(self, ring_design_fixture):
        from repro.routing.ordering import apply_resource_ordering

        removal = remove_deadlocks(ring_design_fixture)
        ordering = apply_resource_ordering(ring_design_fixture)
        assert removal.added_vc_count < ordering.extra_vcs

    def test_removal_cheaper_than_ordering_on_benchmark(self, d36_8_design_14sw):
        from repro.routing.ordering import apply_resource_ordering

        design = d36_8_design_14sw.copy()
        removal = remove_deadlocks(design)
        ordering = apply_resource_ordering(design)
        assert removal.added_vc_count < ordering.extra_vcs
