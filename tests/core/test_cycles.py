"""Tests for CDG cycle detection (repro.core.cycles)."""

import pytest

from repro.core.cdg import ChannelDependencyGraph, build_cdg
from repro.core.cycles import (
    count_cycles,
    cycle_edges,
    find_all_cycles,
    find_cycle_through,
    find_largest_cycle,
    find_smallest_cycle,
    has_cycle,
    verify_cycle,
)
from repro.errors import CycleSearchError
from repro.examples_data.paper_ring import paper_channel
from repro.model.channels import Channel, Link


def ch(src, dst, vc=0):
    return Channel(Link(src, dst), vc)


def cdg_from_routes(routes):
    cdg = ChannelDependencyGraph()
    for i, route in enumerate(routes):
        cdg.add_route(f"f{i}", route)
    return cdg


@pytest.fixture
def two_cycle_cdg():
    """A CDG with a 2-cycle (X<->Y) and a 3-cycle (A->B->C->A)."""
    return cdg_from_routes(
        [
            [ch("X", "Y"), ch("Y", "X"), ch("X", "Y")],
            [ch("A", "B"), ch("B", "C"), ch("C", "A"), ch("A", "B")],
        ]
    )


class TestSmallestCycle:
    def test_acyclic_returns_none(self, simple_line_design):
        assert find_smallest_cycle(build_cdg(simple_line_design)) is None

    def test_paper_ring_cycle_found(self, ring_design_fixture):
        cycle = find_smallest_cycle(build_cdg(ring_design_fixture))
        assert cycle is not None
        assert len(cycle) == 4
        assert set(cycle) == {paper_channel(n) for n in ("L1", "L2", "L3", "L4")}

    def test_smallest_of_several_cycles(self, two_cycle_cdg):
        cycle = find_smallest_cycle(two_cycle_cdg)
        assert len(cycle) == 2
        assert set(cycle) == {ch("X", "Y"), ch("Y", "X")}

    def test_returned_cycle_is_verified(self, two_cycle_cdg):
        cycle = find_smallest_cycle(two_cycle_cdg)
        assert verify_cycle(two_cycle_cdg, cycle)

    def test_deterministic(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture)
        assert find_smallest_cycle(cdg) == find_smallest_cycle(cdg)


class TestCycleThrough:
    def test_cycle_through_specific_channel(self, two_cycle_cdg):
        cycle = find_cycle_through(two_cycle_cdg, ch("A", "B"))
        assert len(cycle) == 3
        assert ch("A", "B") in cycle

    def test_channel_not_on_cycle_returns_none(self):
        cdg = cdg_from_routes([[ch("A", "B"), ch("B", "C")]])
        assert find_cycle_through(cdg, ch("A", "B")) is None

    def test_unknown_channel_raises(self, two_cycle_cdg):
        with pytest.raises(CycleSearchError):
            find_cycle_through(two_cycle_cdg, ch("Z", "W"))


class TestEnumeration:
    def test_find_all_cycles_counts_both(self, two_cycle_cdg):
        cycles = find_all_cycles(two_cycle_cdg)
        assert len(cycles) == 2
        assert sorted(len(c) for c in cycles) == [2, 3]

    def test_limit_caps_enumeration(self, two_cycle_cdg):
        assert len(find_all_cycles(two_cycle_cdg, limit=1)) == 1

    def test_count_cycles(self, two_cycle_cdg, ring_design_fixture):
        assert count_cycles(two_cycle_cdg) == 2
        assert count_cycles(build_cdg(ring_design_fixture)) == 1

    def test_largest_cycle(self, two_cycle_cdg):
        assert len(find_largest_cycle(two_cycle_cdg)) == 3

    def test_largest_cycle_none_when_acyclic(self, simple_line_design):
        assert find_largest_cycle(build_cdg(simple_line_design)) is None

    def test_largest_cycle_matches_sorted_enumeration(self, two_cycle_cdg):
        """The single-pass max equals sort-then-max from the enumeration."""
        cycles = find_all_cycles(two_cycle_cdg)
        assert find_largest_cycle(two_cycle_cdg) == max(cycles, key=len)

    def test_largest_cycle_tie_broken_by_names(self):
        # Two disjoint 2-cycles: the one with the smaller channel names wins.
        cdg = cdg_from_routes(
            [
                [ch("X", "Y"), ch("Y", "X"), ch("X", "Y")],
                [ch("A", "B"), ch("B", "A"), ch("A", "B")],
            ]
        )
        cycle = find_largest_cycle(cdg)
        assert set(cycle) == {ch("A", "B"), ch("B", "A")}

    def test_count_cycles_respects_limit(self, two_cycle_cdg):
        assert count_cycles(two_cycle_cdg, limit=1) == 1
        assert count_cycles(two_cycle_cdg, limit=0) == 0

    def test_has_cycle(self, ring_design_fixture, simple_line_design):
        assert has_cycle(build_cdg(ring_design_fixture))
        assert not has_cycle(build_cdg(simple_line_design))


class TestCycleEdges:
    def test_edges_include_closing_edge(self):
        cycle = [ch("A", "B"), ch("B", "C"), ch("C", "A")]
        edges = cycle_edges(cycle)
        assert len(edges) == 3
        assert edges[-1] == (ch("C", "A"), ch("A", "B"))

    def test_empty_cycle_rejected(self):
        with pytest.raises(CycleSearchError):
            cycle_edges([])

    def test_verify_cycle_rejects_fake_cycle(self, ring_design_fixture):
        cdg = build_cdg(ring_design_fixture)
        fake = [paper_channel("L1"), paper_channel("L3")]
        assert not verify_cycle(cdg, fake)

    def test_verify_cycle_rejects_empty(self, ring_design_fixture):
        assert not verify_cycle(build_cdg(ring_design_fixture), [])
