"""Property-based tests (hypothesis) for the core invariants.

The central properties of the paper's method are checked on randomly
generated traffic and topology configurations:

* removal always terminates with an acyclic CDG and a valid design;
* removal never changes the physical path of any flow, only the VCs;
* the cost reported by the cost table always equals the number of VCs the
  break actually adds;
* resource ordering always produces an acyclic CDG, and never beats the
  removal algorithm on VC count on the designs it is compared on.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchmarks.synthetic import neighbour_traffic, uniform_random_traffic
from repro.core.cdg import build_cdg
from repro.core.cost import BACKWARD, FORWARD, build_cost_table
from repro.core.cycles import find_smallest_cycle
from repro.core.removal import remove_deadlocks
from repro.model.validation import validate_design
from repro.routing.ordering import apply_resource_ordering
from repro.synthesis.builder import SynthesisConfig, synthesize_design
from repro.synthesis.regular import ring_design

#: Keep hypothesis example counts moderate: each example synthesizes a
#: topology and runs the full removal pipeline.
SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def synthesized_designs(draw):
    """Random (traffic, switch count) pairs run through the synthesizer."""
    n_cores = draw(st.integers(min_value=8, max_value=20))
    flows_per_core = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=50))
    n_switches = draw(st.integers(min_value=3, max_value=max(3, n_cores // 2)))
    extra_links = draw(st.sampled_from([0.0, 0.5, 1.0, 2.0]))
    traffic = uniform_random_traffic(n_cores, flows_per_core, seed=seed)
    config = SynthesisConfig(
        n_switches=n_switches, extra_link_fraction=extra_links, seed=seed
    )
    return synthesize_design(traffic, config)


class TestRemovalProperties:
    @SETTINGS
    @given(design=synthesized_designs())
    def test_removal_always_reaches_acyclic_valid_design(self, design):
        result = remove_deadlocks(design)
        assert build_cdg(result.design).is_acyclic()
        validate_design(result.design)

    @SETTINGS
    @given(design=synthesized_designs())
    def test_removal_preserves_physical_paths(self, design):
        result = remove_deadlocks(design)
        for name, route in design.routes.items():
            assert result.design.routes.route(name).links == route.links

    @SETTINGS
    @given(design=synthesized_designs())
    def test_added_vcs_match_topology_growth(self, design):
        before = design.topology.channel_count
        result = remove_deadlocks(design)
        after = result.design.topology.channel_count
        assert after - before == result.added_vc_count

    @SETTINGS
    @given(design=synthesized_designs())
    def test_removal_is_idempotent(self, design):
        once = remove_deadlocks(design)
        twice = remove_deadlocks(once.design)
        assert twice.added_vc_count == 0
        assert twice.initially_deadlock_free

    @SETTINGS
    @given(n_switches=st.integers(min_value=3, max_value=12),
           hops=st.integers(min_value=1, max_value=4))
    def test_unidirectional_rings_always_fixed(self, n_switches, hops):
        if hops % n_switches == 0:
            hops = 1
        traffic = neighbour_traffic(n_switches, hops=hops)
        design = ring_design(n_switches, traffic=traffic)
        result = remove_deadlocks(design)
        assert build_cdg(result.design).is_acyclic()
        validate_design(result.design)


class TestCostTableProperties:
    @SETTINGS
    @given(design=synthesized_designs(), direction=st.sampled_from([FORWARD, BACKWARD]))
    def test_cost_equals_added_vcs_for_chosen_break(self, design, direction):
        from repro.core.breaker import break_cycle

        cdg = build_cdg(design)
        cycle = find_smallest_cycle(cdg)
        if cycle is None:
            return
        table = build_cost_table(cycle, design.routes, direction)
        work = design.copy()
        action = break_cycle(work, cycle, table.best_position, direction)
        assert action.added_vc_count == table.best_cost

    @SETTINGS
    @given(design=synthesized_designs())
    def test_max_row_dominates_every_flow_row(self, design):
        cdg = build_cdg(design)
        cycle = find_smallest_cycle(cdg)
        if cycle is None:
            return
        table = build_cost_table(cycle, design.routes, FORWARD)
        for flow in table.flow_names:
            for position, value in enumerate(table.entries[flow]):
                assert value <= table.max_costs[position]

    @SETTINGS
    @given(design=synthesized_designs())
    def test_every_cycle_edge_has_a_creating_flow(self, design):
        cdg = build_cdg(design)
        cycle = find_smallest_cycle(cdg)
        if cycle is None:
            return
        table = build_cost_table(cycle, design.routes, FORWARD)
        for position in range(len(table.edges)):
            assert table.max_costs[position] >= 1
            assert table.flows_creating(position)


class TestOrderingProperties:
    @SETTINGS
    @given(design=synthesized_designs())
    def test_ordering_always_acyclic_and_valid(self, design):
        result = apply_resource_ordering(design)
        assert build_cdg(result.design).is_acyclic()
        validate_design(result.design)

    @SETTINGS
    @given(design=synthesized_designs())
    def test_removal_never_needs_more_vcs_than_ordering(self, design):
        removal = remove_deadlocks(design)
        ordering = apply_resource_ordering(design)
        assert removal.added_vc_count <= ordering.extra_vcs

    @SETTINGS
    @given(design=synthesized_designs())
    def test_ordering_extra_vcs_matches_topology(self, design):
        result = apply_resource_ordering(design)
        assert result.design.extra_vc_count == result.extra_vcs
