"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main
from repro.examples_data.paper_ring import paper_ring_design
from repro.model.serialization import load_design, save_design


@pytest.fixture
def ring_file(tmp_path):
    return save_design(paper_ring_design(), tmp_path / "ring.json")


class TestAnalyze:
    def test_analyze_reports_cycle(self, ring_file, capsys):
        assert main(["analyze", str(ring_file)]) == 0
        out = capsys.readouterr().out
        assert "deadlock free    : NO" in out
        assert "smallest cycle" in out

    def test_analyze_strict_fails_on_cyclic_design(self, ring_file):
        assert main(["analyze", "--strict", str(ring_file)]) == 1

    def test_analyze_acyclic_design(self, tmp_path, capsys, simple_line_design):
        path = save_design(simple_line_design, tmp_path / "line.json")
        assert main(["analyze", "--strict", str(path)]) == 0
        assert "deadlock free    : yes" in capsys.readouterr().out

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "none.json")]) == 2
        assert "error" in capsys.readouterr().err


class TestRemoveAndOrdering:
    def test_remove_writes_deadlock_free_design(self, ring_file, tmp_path, capsys):
        out_path = tmp_path / "fixed.json"
        assert main(["remove", str(ring_file), "-o", str(out_path)]) == 0
        fixed = load_design(out_path)
        from repro.core.cdg import build_cdg

        assert build_cdg(fixed).is_acyclic()
        assert fixed.extra_vc_count == 1
        assert "virtual channels added" in capsys.readouterr().out

    def test_ordering_writes_design(self, ring_file, tmp_path, capsys):
        out_path = tmp_path / "ordered.json"
        assert main(["ordering", str(ring_file), "-o", str(out_path)]) == 0
        ordered = load_design(out_path)
        assert ordered.extra_vc_count == 3
        assert "extra VC" in capsys.readouterr().out

    def test_ordering_layered_strategy(self, ring_file, capsys):
        assert main(["ordering", str(ring_file), "--strategy", "layered"]) == 0


class TestSynthesizeAndSimulate:
    def test_synthesize_benchmark(self, tmp_path, capsys):
        out_path = tmp_path / "d26.json"
        assert main(
            ["synthesize", "D26_media", "--switches", "8", "-o", str(out_path)]
        ) == 0
        design = load_design(out_path)
        assert design.topology.switch_count == 8
        assert "mW" in capsys.readouterr().out

    def test_synthesize_unknown_benchmark_fails_cleanly(self, capsys):
        assert main(["synthesize", "D99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_simulate_design(self, ring_file, capsys):
        code = main(
            ["simulate", str(ring_file), "--cycles", "500", "--injection-scale", "0.5"]
        )
        out = capsys.readouterr().out
        assert "packets injected" in out
        assert code in (0, 1)

    def test_simulate_detects_deadlock_exit_code(self, ring_file):
        code = main(
            [
                "simulate",
                str(ring_file),
                "--cycles",
                "5000",
                "--injection-scale",
                "6.0",
                "--buffer-depth",
                "2",
                "--seed",
                "1",
            ]
        )
        assert code == 1


class TestListing:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("D26_media", "D36_8", "D38_tvopd"):
            assert name in out

    def test_figures_10_json_output(self, capsys):
        assert main(["figures", "10"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["switch_count"] == 14
        assert len(data["benchmarks"]) == 6
