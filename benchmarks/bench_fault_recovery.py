"""Fault injection and online recovery: latency and re-removal cost.

A fault schedule (link/router failures plus repairs) turns a simulation
run into a sequence of recovery episodes: every topology change re-routes
the affected flows, re-runs deadlock removal on the degraded design
through the dirty-region ``"context"`` engine and swaps the new route
tables into the running network.  This benchmark quantifies what that
costs on the deadlock-free D36_8 design at 35 switches (full
configuration):

* **recovery latency** — cycles until the packets in flight at each fault
  batch drained under the recovered route tables
  (:attr:`~repro.simulation.stats.SimulationStats.recovery_cycles`);
* **re-removal cost** — wall-clock overhead of the faulted run over an
  identical fault-free run, plus the ``"context"`` engine's dirty-region
  counters for the in-flight removals;
* **verdict integrity** — the faulted run is executed with
  ``cross_check=True`` (compiled engine re-verified against the legacy
  engine, field-identical stats) and every post-recovery design must be
  deadlock-free (``post_fault_deadlock_free``);
* **per-policy cost** — the same faulted run repeated under every entry
  of the :data:`repro.api.registry.recovery_policies` registry, timing
  each policy's repair strategy against the fault-free baseline and
  recording its delivery/loss/recovery profile.

Results go to ``benchmarks/results/fault_recovery.json`` and
``BENCH_fault_recovery.json`` at the repository root.  Runnable
standalone::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py           # full
    PYTHONPATH=src python benchmarks/bench_fault_recovery.py --smoke   # CI, <60 s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
ROOT_RESULT_PATH = REPO_ROOT / "BENCH_fault_recovery.json"

from repro.api.registry import recovery_policies
from repro.benchmarks.registry import get_benchmark
from repro.core.removal import remove_deadlocks
from repro.perf.design_context import counters
from repro.simulation.events import EventSchedule
from repro.simulation.simulator import SimulationConfig, simulate_design
from repro.synthesis.builder import SynthesisConfig, synthesize_design


def _protected_design(benchmark: str, switches: int, seed: int):
    traffic = get_benchmark(benchmark, seed=seed)
    design = synthesize_design(traffic, SynthesisConfig(n_switches=switches, seed=seed))
    return remove_deadlocks(design).design


def run_fault_recovery_benchmark(
    *,
    benchmark: str = "D36_8",
    switches: int = 35,
    seed: int = 0,
    rounds: int = 3,
    max_cycles: int = 2000,
    link_failures: int = 2,
    router_failures: int = 1,
) -> dict:
    """Time fault-free vs. faulted runs and collect recovery metrics."""
    design = _protected_design(benchmark, switches, seed)
    schedule = EventSchedule.random(
        design.topology,
        seed=seed,
        link_failures=link_failures,
        router_failures=router_failures,
        start_cycle=max(max_cycles // 20, 10),
        end_cycle=max(max_cycles // 2, 20),
        restore_after=max(max_cycles // 4, 10),
    )
    baseline_config = SimulationConfig(injection_scale=1.0, seed=seed)
    faulted_config = SimulationConfig(
        injection_scale=1.0, seed=seed, fault_schedule=schedule
    )

    baseline_times: List[float] = []
    faulted_times: List[float] = []
    baseline_stats = faulted_stats = None
    counters.reset()
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        baseline_stats = simulate_design(
            design, max_cycles=max_cycles, config=baseline_config, engine="compiled"
        )
        baseline_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        faulted_stats = simulate_design(
            design, max_cycles=max_cycles, config=faulted_config, engine="compiled"
        )
        faulted_times.append(time.perf_counter() - start)
    removal_counters = counters.snapshot()

    # One cross-checked faulted run: the compiled engine's verdict under
    # faults re-verified field-by-field against the legacy engine.
    cross_stats = simulate_design(
        design,
        max_cycles=max_cycles,
        config=faulted_config,
        engine="compiled",
        cross_check=True,
    )

    baseline_s, faulted_s = min(baseline_times), min(faulted_times)

    # The same faulted run under every registered recovery policy: what
    # does each repair strategy cost, and what service does it deliver?
    policies = {}
    for policy in recovery_policies.names():
        policy_config = SimulationConfig(
            injection_scale=1.0,
            seed=seed,
            fault_schedule=schedule,
            fault_recovery=policy,
        )
        policy_times: List[float] = []
        policy_stats = None
        for _ in range(max(rounds, 1)):
            start = time.perf_counter()
            policy_stats = simulate_design(
                design, max_cycles=max_cycles, config=policy_config, engine="compiled"
            )
            policy_times.append(time.perf_counter() - start)
        policy_s = min(policy_times)
        drained = [c for c in policy_stats.recovery_cycles if c >= 0]
        policies[policy] = {
            "seconds": policy_s,
            "overhead_percent": (
                (policy_s / baseline_s - 1.0) * 100.0 if baseline_s > 0 else 0.0
            ),
            "packets_delivered": policy_stats.packets_delivered,
            "packets_lost": policy_stats.packets_lost,
            "flits_lost": policy_stats.flits_lost,
            "flows_rerouted": policy_stats.flows_rerouted,
            "mean_recovery_cycles": (
                sum(drained) / len(drained) if drained else 0.0
            ),
            "batches_never_drained": policy_stats.batches_never_drained,
            "post_fault_deadlock_free": policy_stats.post_fault_deadlock_free,
        }
    recovered = [c for c in faulted_stats.recovery_cycles if c >= 0]
    return {
        "benchmark": benchmark,
        "switches": switches,
        "seed": seed,
        "rounds": max(rounds, 1),
        "max_cycles": max_cycles,
        "schedule": schedule.to_dict(),
        "fault_events_applied": faulted_stats.fault_events_applied,
        "baseline_seconds": baseline_s,
        "faulted_seconds": faulted_s,
        "recovery_overhead_seconds": faulted_s - baseline_s,
        "recovery_overhead_percent": (
            (faulted_s / baseline_s - 1.0) * 100.0 if baseline_s > 0 else 0.0
        ),
        "recovery_cycles": list(faulted_stats.recovery_cycles),
        "mean_recovery_cycles": (
            sum(recovered) / len(recovered) if recovered else 0.0
        ),
        "batches_drained": len(recovered),
        "batches_total": len(faulted_stats.recovery_cycles),
        "packets_lost": faulted_stats.packets_lost,
        "flits_lost": faulted_stats.flits_lost,
        "flows_rerouted": faulted_stats.flows_rerouted,
        "post_fault_deadlock_free": faulted_stats.post_fault_deadlock_free,
        "baseline_packets_delivered": baseline_stats.packets_delivered,
        "faulted_packets_delivered": faulted_stats.packets_delivered,
        "removal_counters": removal_counters,
        "cross_check_identical": True,  # cross_check raises otherwise
        "cross_check_deadlocked": cross_stats.deadlock_detected,
        "policies": policies,
    }


def _persist(data: dict) -> None:
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(data, indent=2, sort_keys=True)
    (results_dir / "fault_recovery.json").write_text(payload)
    ROOT_RESULT_PATH.write_text(payload + "\n")


def _report(data: dict) -> str:
    lines = [
        f"fault recovery benchmark — {data['benchmark']} @ "
        f"{data['switches']} switches (seed {data['seed']})",
        f"  schedule: {len(data['schedule']['events'])} event(s), "
        f"{data['fault_events_applied']} applied",
        f"  fault-free: {data['baseline_seconds'] * 1e3:.0f}ms   "
        f"faulted: {data['faulted_seconds'] * 1e3:.0f}ms   "
        f"overhead: {data['recovery_overhead_percent']:.1f}%",
        f"  recovery: {data['batches_drained']}/{data['batches_total']} "
        f"batch(es) drained, mean {data['mean_recovery_cycles']:.0f} cycles",
        f"  lost: {data['packets_lost']} packet(s) / {data['flits_lost']} "
        f"flit(s); {data['flows_rerouted']} flow reroute(s)",
        f"  post-fault CDG acyclic: {data['post_fault_deadlock_free']}   "
        f"cross-check identical: {data['cross_check_identical']}",
    ]
    for policy, entry in sorted(data["policies"].items()):
        lines.append(
            f"  policy {policy:<10}: {entry['seconds'] * 1e3:.0f}ms "
            f"({entry['overhead_percent']:+.1f}%)   "
            f"delivered {entry['packets_delivered']}, "
            f"lost {entry['packets_lost']} pkt / {entry['flits_lost']} flit, "
            f"acyclic: {entry['post_fault_deadlock_free']}"
        )
    return "\n".join(lines)


def _check(data: dict) -> List[str]:
    failures = []
    if data["fault_events_applied"] == 0:
        failures.append("no fault events applied — schedule missed the run window")
    if data["post_fault_deadlock_free"] is not True:
        failures.append("a post-recovery design was not deadlock-free")
    if not data["cross_check_identical"]:
        failures.append("compiled and legacy engines diverged under faults")
    if data["batches_total"] and data["batches_drained"] == 0:
        failures.append("no fault batch ever drained its in-flight packets")
    for policy, entry in sorted(data["policies"].items()):
        # reroute deliberately skips the removal re-run, so a cyclic
        # post-fault CDG is its documented (and tested) failure mode.
        if policy != "reroute" and entry["post_fault_deadlock_free"] is False:
            failures.append(
                f"policy {policy!r} left a post-recovery design deadlocked"
            )
    return failures


def test_fault_recovery(benchmark, context_counters):
    """Harness entry: full configuration, asserts recovery integrity."""
    data = benchmark.pedantic(run_fault_recovery_benchmark, rounds=1, iterations=1)
    print("\n" + _report(data))
    _persist(data)
    failures = _check(data)
    assert not failures, "; ".join(failures)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="D36_8")
    parser.add_argument("--switches", type=int, default=35)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (14 switches, short runs, 1 round)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        data = run_fault_recovery_benchmark(
            benchmark=args.benchmark,
            switches=14,
            seed=args.seed,
            rounds=1,
            max_cycles=600,
            link_failures=2,
            router_failures=0,
        )
    else:
        data = run_fault_recovery_benchmark(
            benchmark=args.benchmark,
            switches=args.switches,
            seed=args.seed,
            rounds=args.rounds,
        )
    print(_report(data))
    _persist(data)
    print(f"wrote {ROOT_RESULT_PATH}")
    failures = _check(data)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
