"""Section 5 area / resource claims.

The paper reports, against the resource-ordering baseline and averaged over
its benchmark set at 14 switches:

* an 88% average reduction in the number of additional channels (VCs);
* a 66% average reduction in NoC area.

This benchmark regenerates both columns for all six benchmarks.  The VC
reduction reproduces closely; the area reduction is smaller in our model
because our ORION-style router keeps a larger VC-independent area share
(crossbar, allocators, control) — the *direction and ranking* match, which
is what the substitution can preserve (see DESIGN.md, substitution 3).
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.analysis.metrics import format_table
from repro.analysis.sweeps import area_savings_table


def test_area_and_vc_savings(benchmark):
    """Regenerate the 88% VC-reduction and 66% area-reduction claims."""
    data = benchmark.pedantic(area_savings_table, rounds=1, iterations=1)

    print(banner("Section 5 — VC and area reduction vs. resource ordering (14 switches)"))
    rows = []
    for name, removal_vcs, ordering_vcs, vc_red, area_sav in zip(
        data["benchmarks"],
        data["removal_extra_vcs"],
        data["ordering_extra_vcs"],
        data["vc_reduction_percent"],
        data["area_saving_percent"],
    ):
        rows.append([name, removal_vcs, ordering_vcs, round(vc_red, 1), round(area_sav, 1)])
    print(
        format_table(
            ["benchmark", "removal VCs", "ordering VCs", "VC reduction [%]", "area saving [%]"],
            rows,
        )
    )
    print(
        f"\naverage VC reduction  : {data['average_vc_reduction_percent']:.1f}% "
        "(paper: 88%)"
    )
    print(
        f"average area saving   : {data['average_area_saving_percent']:.1f}% "
        "(paper: 66%; see DESIGN.md on the router area model)"
    )
    save_results("area_savings", data)

    assert data["average_vc_reduction_percent"] > 60.0
    assert data["average_area_saving_percent"] > 5.0
    for removal_vcs, ordering_vcs in zip(
        data["removal_extra_vcs"], data["ordering_extra_vcs"]
    ):
        assert removal_vcs <= ordering_vcs
