"""Ablation study of the algorithm's design choices.

The paper motivates two heuristics without quantifying them:

* breaking the *smallest* cycle first ("it can also lead to breaking a
  larger cycle sharing some of the edges with this one");
* choosing the cheaper of the *forward* and *backward* break directions.

This benchmark quantifies both on the cyclic benchmark designs, and also
compares the paper-style hop-index resource ordering against an optimised
layered ordering to show the comparison baseline is not a straw man of our
making.
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.analysis.metrics import format_table
from repro.benchmarks.registry import get_benchmark
from repro.core.removal import remove_deadlocks
from repro.routing.ordering import apply_resource_ordering
from repro.synthesis.builder import SynthesisConfig, synthesize_design

#: Benchmarks dense enough to produce cyclic CDGs at these switch counts.
CONFIGS = [("D36_6", 14), ("D36_8", 14), ("D36_8", 22), ("D35_bott", 14)]


def _cyclic_designs():
    designs = []
    for name, switches in CONFIGS:
        traffic = get_benchmark(name)
        design = synthesize_design(traffic, SynthesisConfig(n_switches=switches))
        designs.append((f"{name}@{switches}sw", design))
    return designs


def test_cycle_selection_heuristics(benchmark):
    """Smallest-first vs. largest-first vs. random cycle selection."""
    def run():
        rows = []
        for label, design in _cyclic_designs():
            smallest = remove_deadlocks(design, cycle_selection="smallest")
            largest = remove_deadlocks(design, cycle_selection="largest")
            random_sel = remove_deadlocks(design, cycle_selection="random", seed=1)
            rows.append(
                {
                    "design": label,
                    "smallest": smallest.added_vc_count,
                    "largest": largest.added_vc_count,
                    "random": random_sel.added_vc_count,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(banner("Ablation — cycle selection heuristic (VCs added)"))
    print(
        format_table(
            ["design", "smallest-first (paper)", "largest-first", "random"],
            [[r["design"], r["smallest"], r["largest"], r["random"]] for r in rows],
        )
    )
    save_results("ablation_cycle_selection", rows)
    total_smallest = sum(r["smallest"] for r in rows)
    total_largest = sum(r["largest"] for r in rows)
    print(
        f"\nsmallest-first adds {total_smallest} VC(s) in total vs. "
        f"{total_largest} for largest-first."
    )
    assert total_smallest <= total_largest * 1.5  # smallest-first is competitive


def test_direction_policy(benchmark):
    """Best-of-both (paper) vs. forward-only vs. backward-only breaks."""
    def run():
        rows = []
        for label, design in _cyclic_designs():
            best = remove_deadlocks(design, direction_policy="best")
            forward = remove_deadlocks(design, direction_policy="forward")
            backward = remove_deadlocks(design, direction_policy="backward")
            rows.append(
                {
                    "design": label,
                    "best": best.added_vc_count,
                    "forward": forward.added_vc_count,
                    "backward": backward.added_vc_count,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(banner("Ablation — break direction policy (VCs added)"))
    print(
        format_table(
            ["design", "best of both (paper)", "forward only", "backward only"],
            [[r["design"], r["best"], r["forward"], r["backward"]] for r in rows],
        )
    )
    save_results("ablation_direction_policy", rows)
    for r in rows:
        assert r["best"] <= max(r["forward"], r["backward"])


def test_ordering_strategy_ablation(benchmark):
    """Paper-style hop-index ordering vs. an optimised layered ordering."""
    def run():
        rows = []
        for label, design in _cyclic_designs():
            removal = remove_deadlocks(design)
            hop = apply_resource_ordering(design, strategy="hop_index")
            layered = apply_resource_ordering(design, strategy="layered")
            rows.append(
                {
                    "design": label,
                    "removal": removal.added_vc_count,
                    "ordering_hop_index": hop.extra_vcs,
                    "ordering_layered": layered.extra_vcs,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(banner("Ablation — resource-ordering strategy vs. deadlock removal (VCs added)"))
    print(
        format_table(
            ["design", "deadlock removal", "ordering (hop index)", "ordering (layered)"],
            [
                [r["design"], r["removal"], r["ordering_hop_index"], r["ordering_layered"]]
                for r in rows
            ],
        )
    )
    save_results("ablation_ordering_strategy", rows)
    for r in rows:
        # Even the optimised ordering variant cannot beat targeted removal.
        assert r["removal"] <= r["ordering_layered"] <= r["ordering_hop_index"]
