"""Shared helpers for the benchmark harness.

Every benchmark regenerates the data behind one table or figure of the
paper, prints it in a paper-like layout and stores the raw numbers as JSON
under ``benchmarks/results/`` so EXPERIMENTS.md can quote them.

Run the whole harness with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: Where benchmark results are written (created on demand).
RESULTS_DIR = Path(__file__).parent / "results"


def save_results(name: str, data) -> Path:
    """Write one benchmark's data as JSON and return the path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True, default=str))
    return path


def banner(title: str) -> str:
    """A visually distinct section header for the printed reports."""
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"


@pytest.fixture
def results_dir() -> Path:
    """The directory benchmark results are written to."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def context_counters():
    """The design-context reuse counters, reset for one measurement window.

    Benchmarks that rely on cached state (shared switch graphs, route-delta
    CDG maintenance, indexed cost tables) take this fixture and assert the
    relevant counters moved — a refactor that silently falls back to
    rebuilding per call then fails the benchmark loudly instead of just
    showing up as a slower number.
    """
    from repro.perf.design_context import counters

    counters.reset()
    yield counters
