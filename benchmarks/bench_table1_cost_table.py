"""Table 1 + the worked example of Figures 1-7.

Regenerates the forward-direction cost table of the paper's 4-switch ring
example and verifies the removal needs exactly one extra virtual channel,
then times the individual algorithm steps on that example (CDG build,
smallest-cycle search, cost table, full removal).
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.core.cdg import build_cdg
from repro.core.cost import build_cost_table
from repro.core.cycles import find_smallest_cycle
from repro.core.removal import remove_deadlocks
from repro.examples_data.paper_ring import (
    paper_ring_cycle,
    paper_ring_design,
    paper_ring_expected_cost_table,
)


def test_table1_forward_cost_table(benchmark):
    """Regenerate Table 1 and check it matches the paper exactly."""
    design = paper_ring_design()
    cycle = paper_ring_cycle()

    table = benchmark(build_cost_table, cycle, design.routes, "forward")

    expected = paper_ring_expected_cost_table()
    rows = {flow: list(table.entries[flow]) for flow in table.flow_names}
    rows["MAX"] = list(table.max_costs)
    print(banner("Table 1 — cost table in the forward direction (paper ring example)"))
    print(table.to_text())
    print("\npaper values  :", {k: v for k, v in expected.items()})
    print("reproduced    :", rows)
    assert rows == expected, "cost table must match Table 1 of the paper"
    save_results("table1_cost_table", {"expected": expected, "reproduced": rows})


def test_worked_example_removal(benchmark):
    """Figures 1-4: one extra VC removes the ring deadlock."""
    def run():
        return remove_deadlocks(paper_ring_design())

    result = benchmark(run)
    print(banner("Worked example (Figures 1-4)"))
    print(result.summary())
    assert result.added_vc_count == 1
    assert build_cdg(result.design).is_acyclic()
    save_results(
        "worked_example_removal",
        {"added_vcs": result.added_vc_count, "iterations": result.iterations},
    )


def test_microbench_cdg_build(benchmark):
    """Microbenchmark: building the CDG of the ring example."""
    design = paper_ring_design()
    cdg = benchmark(build_cdg, design)
    assert cdg.edge_count == 4


def test_microbench_smallest_cycle(benchmark):
    """Microbenchmark: BFS smallest-cycle search on the ring CDG."""
    cdg = build_cdg(paper_ring_design())
    cycle = benchmark(find_smallest_cycle, cdg)
    assert len(cycle) == 4
