"""Runtime validation of the deadlock-freedom guarantee.

The paper's argument is structural (acyclic CDG ⇒ no routing deadlock); the
original evaluation never runs the NoC.  This benchmark adds that missing
evidence with the flit-level wormhole simulator:

* the unprotected ring example locks up under pressure (a cyclic wait over
  the four ring channels is reported);
* the same design protected by the removal algorithm, and by resource
  ordering, sustains the same traffic without ever stalling;
* a cyclic synthesized benchmark design (D36_8, 14 switches) is also
  exercised before and after removal.
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.analysis.metrics import format_table
from repro.core.removal import remove_deadlocks
from repro.examples_data.paper_ring import paper_ring_design
from repro.routing.ordering import apply_resource_ordering
from repro.simulation.simulator import SimulationConfig, simulate_design
from repro.synthesis.builder import SynthesisConfig, synthesize_design
from repro.benchmarks.registry import get_benchmark

STRESS = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)


def test_ring_deadlock_before_and_after(benchmark):
    """The worked example: deadlock before removal, none after."""
    def run_all():
        design = paper_ring_design()
        unprotected = simulate_design(design, max_cycles=5000, config=STRESS)
        removal = remove_deadlocks(design)
        removed = simulate_design(removal.design, max_cycles=5000, config=STRESS)
        ordering = apply_resource_ordering(design)
        ordered = simulate_design(ordering.design, max_cycles=5000, config=STRESS)
        return {
            "unprotected": unprotected,
            "removal": removed,
            "ordering": ordered,
            "removal_vcs": removal.added_vc_count,
            "ordering_vcs": ordering.extra_vcs,
        }

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(banner("Wormhole simulation of the ring example under stress traffic"))
    rows = [
        ["unprotected", 0, outcome["unprotected"].deadlock_detected,
         outcome["unprotected"].packets_delivered,
         round(outcome["unprotected"].average_latency, 1)],
        ["deadlock removal", outcome["removal_vcs"], outcome["removal"].deadlock_detected,
         outcome["removal"].packets_delivered, round(outcome["removal"].average_latency, 1)],
        ["resource ordering", outcome["ordering_vcs"], outcome["ordering"].deadlock_detected,
         outcome["ordering"].packets_delivered, round(outcome["ordering"].average_latency, 1)],
    ]
    print(format_table(
        ["variant", "extra VCs", "deadlocked", "packets delivered", "avg latency"], rows
    ))
    save_results(
        "simulation_ring_deadlock",
        {row[0]: {"extra_vcs": row[1], "deadlocked": bool(row[2]), "delivered": row[3]}
         for row in rows},
    )
    assert outcome["unprotected"].deadlock_detected
    assert not outcome["removal"].deadlock_detected
    assert not outcome["ordering"].deadlock_detected
    assert outcome["removal"].packets_delivered > outcome["unprotected"].packets_delivered


def test_benchmark_design_simulation(benchmark):
    """A synthesized D36_8 design runs deadlock free after removal."""
    def run():
        traffic = get_benchmark("D36_8")
        design = synthesize_design(traffic, SynthesisConfig(n_switches=14))
        result = remove_deadlocks(design)
        stats = simulate_design(
            result.design,
            max_cycles=3000,
            config=SimulationConfig(injection_scale=1.0, seed=0),
        )
        return result, stats

    result, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print(banner("Wormhole simulation of the protected D36_8 design (14 switches)"))
    print(stats.summary())
    save_results(
        "simulation_d36_8",
        {
            "added_vcs": result.added_vc_count,
            "packets_delivered": stats.packets_delivered,
            "average_latency": stats.average_latency,
            "deadlocked": stats.deadlock_detected,
        },
    )
    assert not stats.deadlock_detected
    assert stats.packets_delivered > 0
