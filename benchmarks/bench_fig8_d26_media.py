"""Figure 8 — extra VCs vs. switch count for D26_media.

The paper plots, for topologies synthesized with 5..25 switches, the number
of extra virtual channels required by resource ordering (dotted, growing to
~16-18) and by the deadlock-removal algorithm (solid, zero for most switch
counts).  The headline observation: an application-specific topology can be
deadlock free even without restricting the routing function, so removal is
almost free while ordering pays one class per route hop.
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.analysis.metrics import format_table
from repro.analysis.sweeps import FIGURE8_SWITCH_COUNTS, figure8_series


def test_figure8_vc_overhead_sweep(benchmark):
    """Regenerate the two series of Figure 8."""
    data = benchmark.pedantic(
        figure8_series, kwargs={"switch_counts": FIGURE8_SWITCH_COUNTS}, rounds=1, iterations=1
    )

    print(banner("Figure 8 — number of extra VCs vs. switch count (D26_media)"))
    rows = list(
        zip(
            data["switch_counts"],
            data["resource_ordering_vcs"],
            data["deadlock_removal_vcs"],
        )
    )
    print(
        format_table(
            ["switch count", "resource ordering VCs", "deadlock removal VCs"], rows
        )
    )
    removal_total = sum(data["deadlock_removal_vcs"])
    ordering_total = sum(data["resource_ordering_vcs"])
    print(
        f"\npaper shape: removal ~0 for most switch counts, ordering grows with "
        f"switch count.\nreproduced: removal total {removal_total} VC(s), "
        f"ordering total {ordering_total} VC(s) over the sweep."
    )
    save_results("figure8_d26_media", data)

    # Shape assertions (not absolute numbers): removal never exceeds ordering,
    # removal is zero at most switch counts, ordering grows overall.
    assert all(
        removal <= ordering
        for removal, ordering in zip(
            data["deadlock_removal_vcs"], data["resource_ordering_vcs"]
        )
    )
    zero_points = sum(1 for v in data["deadlock_removal_vcs"] if v == 0)
    assert zero_points >= len(data["switch_counts"]) // 2
    assert data["resource_ordering_vcs"][-1] > data["resource_ordering_vcs"][0]
