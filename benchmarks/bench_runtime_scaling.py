"""Section 5 runtime claim.

"In practice our algorithm runs fast.  We ran our experiments on a 2 GHz
Linux machine.  The method runs within minutes even for the largest
benchmark and it is scalable."

This benchmark measures the wall-clock runtime of the removal algorithm on
all six benchmarks at the paper's 14-switch configuration, and additionally
sweeps D36_8 over growing switch counts to show the scaling trend.  Absolute
times are not comparable to the authors' C++ tool on 2009 hardware; the
claim reproduced is the order of magnitude (seconds, not hours) and the
graceful growth with design size.
"""

from __future__ import annotations

import time

from conftest import banner, save_results

from repro.analysis.metrics import format_table
from repro.analysis.sweeps import runtime_scaling
from repro.benchmarks.registry import get_benchmark
from repro.core.removal import remove_deadlocks
from repro.synthesis.builder import SynthesisConfig, synthesize_design


def test_runtime_all_benchmarks(benchmark):
    """Removal runtime for every benchmark at 14 switches."""
    data = benchmark.pedantic(runtime_scaling, rounds=1, iterations=1)

    print(banner("Section 5 — removal runtime per benchmark (14 switches)"))
    rows = []
    for name, synth, removal, vcs in zip(
        data["benchmarks"],
        data["synthesis_seconds"],
        data["removal_seconds"],
        data["added_vcs"],
    ):
        rows.append([name, round(synth, 3), round(removal, 3), vcs])
    print(
        format_table(
            ["benchmark", "synthesis [s]", "removal [s]", "VCs added"], rows
        )
    )
    print(
        f"\ntotal removal time over all benchmarks: "
        f"{data['total_removal_seconds']:.2f} s (paper: 'within minutes')"
    )
    save_results("runtime_all_benchmarks", data)
    assert data["total_removal_seconds"] < 120.0


def test_runtime_scaling_with_switch_count(benchmark):
    """Scaling of the removal runtime with the switch count (D36_8)."""
    def sweep():
        traffic = get_benchmark("D36_8")
        points = []
        for count in (10, 18, 26, 35):
            design = synthesize_design(traffic, SynthesisConfig(n_switches=count))
            start = time.perf_counter()
            result = remove_deadlocks(design)
            elapsed = time.perf_counter() - start
            points.append(
                {
                    "switch_count": count,
                    "channels": design.topology.channel_count,
                    "removal_seconds": elapsed,
                    "added_vcs": result.added_vc_count,
                    "iterations": result.iterations,
                }
            )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(banner("Removal runtime scaling with switch count (D36_8)"))
    rows = [
        [p["switch_count"], p["channels"], p["iterations"], p["added_vcs"],
         round(p["removal_seconds"], 3)]
        for p in points
    ]
    print(
        format_table(
            ["switch count", "channels", "iterations", "VCs added", "removal [s]"], rows
        )
    )
    save_results("runtime_scaling_d36_8", points)
    assert all(p["removal_seconds"] < 60.0 for p in points)
