"""Figure 10 — normalised NoC power: resource ordering vs. deadlock removal.

For all six SoC benchmarks, synthesized with 14 switches (the configuration
the paper reports), the power of the resource-ordering design is normalised
to the power of the deadlock-removal design.  The paper reports an average
power saving of 8.6% for the removal algorithm.
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.analysis.metrics import format_table
from repro.analysis.sweeps import figure10_power_series


def test_figure10_normalised_power(benchmark):
    """Regenerate the normalised power bars of Figure 10."""
    data = benchmark.pedantic(figure10_power_series, rounds=1, iterations=1)

    print(banner("Figure 10 — normalised power consumption (14-switch topologies)"))
    rows = []
    for name, removal_norm, ordering_norm, saving in zip(
        data["benchmarks"],
        data["deadlock_removal_normalised_power"],
        data["resource_ordering_normalised_power"],
        data["power_saving_percent"],
    ):
        rows.append([name, round(removal_norm, 3), round(ordering_norm, 3), round(saving, 2)])
    print(
        format_table(
            ["benchmark", "deadlock removal", "resource ordering", "saving [%]"], rows
        )
    )
    print(
        f"\naverage power saving of deadlock removal vs. resource ordering: "
        f"{data['average_power_saving_percent']:.2f}% "
        "(paper reports an average of 8.6%)"
    )
    save_results("figure10_power", data)

    # Shape assertions: ordering is never cheaper, and the average saving is
    # in the single-digit to low-tens percent range the paper reports.
    assert all(v >= 1.0 for v in data["resource_ordering_normalised_power"])
    assert 1.0 < data["average_power_saving_percent"] < 30.0
