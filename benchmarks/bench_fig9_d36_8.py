"""Figure 9 — extra VCs vs. switch count for D36_8.

D36_8 is the paper's stress case: 36 cores, each sending to eight others.
With that traffic density the synthesized topologies do exhibit CDG cycles,
so the removal algorithm has to add some VCs — but still an order of
magnitude fewer than resource ordering, whose overhead climbs above one
hundred VCs at large switch counts (the paper's y-axis reaches 130).
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.analysis.metrics import format_table, percent_reduction
from repro.analysis.sweeps import FIGURE9_SWITCH_COUNTS, figure9_series


def test_figure9_vc_overhead_sweep(benchmark):
    """Regenerate the two series of Figure 9."""
    data = benchmark.pedantic(
        figure9_series, kwargs={"switch_counts": FIGURE9_SWITCH_COUNTS}, rounds=1, iterations=1
    )

    print(banner("Figure 9 — number of extra VCs vs. switch count (D36_8)"))
    rows = []
    for count, ordering, removal in zip(
        data["switch_counts"],
        data["resource_ordering_vcs"],
        data["deadlock_removal_vcs"],
    ):
        rows.append([count, ordering, removal, round(percent_reduction(ordering, removal), 1)])
    print(
        format_table(
            ["switch count", "resource ordering VCs", "deadlock removal VCs", "reduction [%]"],
            rows,
        )
    )
    average_reduction = sum(row[3] for row in rows) / len(rows)
    print(
        "\npaper shape: ordering grows to >100 VCs at 35 switches, removal stays "
        f"small.\nreproduced: average VC reduction {average_reduction:.1f}% "
        "(paper reports an 88% average across its benchmark set)."
    )
    save_results("figure9_d36_8", data)

    # Shape assertions.
    for removal, ordering in zip(
        data["deadlock_removal_vcs"], data["resource_ordering_vcs"]
    ):
        assert removal < ordering
    assert data["resource_ordering_vcs"][-1] >= 3 * data["resource_ordering_vcs"][0]
    assert max(data["deadlock_removal_vcs"]) < max(data["resource_ordering_vcs"]) / 2
    assert average_reduction > 60.0
