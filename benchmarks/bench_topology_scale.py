"""Scaling sweep of the topology families through the full stack.

For every registered topology family this benchmark walks a ladder of
sizes, and at each size synthesizes the family member for a matching
parametric uniform workload, runs the paper's deadlock-removal algorithm
and wormhole-simulates the protected design under the compiled engine —
recording the wall-clock of each stage.  This is the datacenter-scale
question behind the family layer: does removal stay tractable (and the
fabric deadlock free) as the network grows from SoC-sized rings to an
80-switch fat-tree?

Results are persisted both to ``benchmarks/results/topology_scale.json``
(the harness convention) and to ``BENCH_topology_scale.json`` at the
repository root.  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_topology_scale.py           # full
    PYTHONPATH=src python benchmarks/bench_topology_scale.py --smoke   # CI, <60 s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
ROOT_RESULT_PATH = REPO_ROOT / "BENCH_topology_scale.json"

from repro.analysis.performance import measure_load_point
from repro.benchmarks.registry import get_benchmark
from repro.core.cdg import build_cdg
from repro.core.removal import remove_deadlocks
from repro.synthesis.families import family_design, family_size

#: Size ladders (three points per family) of the CI smoke configuration.
SMOKE_POINTS: Dict[str, List[dict]] = {
    "ring": [{"n_switches": 4}, {"n_switches": 6}, {"n_switches": 8}],
    "mesh": [
        {"rows": 2, "cols": 2},
        {"rows": 3, "cols": 3},
        {"rows": 4, "cols": 4},
    ],
    "torus": [
        {"rows": 3, "cols": 3},
        {"rows": 3, "cols": 4},
        {"rows": 4, "cols": 4},
    ],
    "fat_tree": [{"k": 2}, {"k": 4}, {"k": 6}],
    "clos": [
        {"spines": 2, "leaves": 4},
        {"spines": 3, "leaves": 6},
        {"spines": 4, "leaves": 8},
    ],
    "vl2": [
        {"spines": 2, "leaves": 4},
        {"spines": 3, "leaves": 6},
        {"spines": 4, "leaves": 8},
    ],
    "dragonfly": [
        {"groups": 2, "routers": 2},
        {"groups": 3, "routers": 3},
        {"groups": 4, "routers": 4},
    ],
}

#: The full ladders stretch the top end — including the acceptance point,
#: an 80-switch fat-tree (k=8).
FULL_POINTS: Dict[str, List[dict]] = {
    "ring": [{"n_switches": 8}, {"n_switches": 16}, {"n_switches": 32}],
    "mesh": [
        {"rows": 3, "cols": 3},
        {"rows": 5, "cols": 5},
        {"rows": 7, "cols": 7},
    ],
    "torus": [
        {"rows": 3, "cols": 3},
        {"rows": 5, "cols": 5},
        {"rows": 7, "cols": 7},
    ],
    "fat_tree": [{"k": 4}, {"k": 6}, {"k": 8}],
    "clos": [
        {"spines": 4, "leaves": 8},
        {"spines": 8, "leaves": 16},
        {"spines": 12, "leaves": 24},
    ],
    "vl2": [
        {"spines": 4, "leaves": 8},
        {"spines": 8, "leaves": 16},
        {"spines": 12, "leaves": 24},
    ],
    "dragonfly": [
        {"groups": 3, "routers": 3},
        {"groups": 4, "routers": 4},
        {"groups": 6, "routers": 5},
    ],
}


def _run_point(
    family: str, params: dict, *, seed: int, sim_cycles: int, injection_scale: float
) -> dict:
    """Synthesize, protect and simulate one family member, timing each stage."""
    size = family_size(family, params)
    traffic = get_benchmark(f"uniform_c{2 * size}_f2", seed=seed)

    start = time.perf_counter()
    design = family_design(family, traffic, params)
    synthesis_seconds = time.perf_counter() - start

    start = time.perf_counter()
    removal = remove_deadlocks(design)
    removal_seconds = time.perf_counter() - start
    deadlock_free = build_cdg(removal.design).is_acyclic()

    start = time.perf_counter()
    metrics = measure_load_point(
        removal.design,
        injection_scale=injection_scale,
        max_cycles=sim_cycles,
        seed=seed,
        sim_engine="compiled",
    )
    simulation_seconds = time.perf_counter() - start

    return {
        "family": family,
        "params": params,
        "switches": size,
        "links": design.topology.link_count,
        "flows": design.traffic.flow_count,
        "synthesis_seconds": synthesis_seconds,
        "removal_seconds": removal_seconds,
        "removal_added_vcs": removal.added_vc_count,
        "removal_iterations": removal.iterations,
        "deadlock_free_after_removal": deadlock_free,
        "simulation_seconds": simulation_seconds,
        "sim_cycles": sim_cycles,
        "injection_scale": injection_scale,
        "packets_delivered": metrics["packets_delivered"],
        "average_latency": metrics["average_latency"],
        "deadlocked": metrics["deadlocked"],
    }


def run_topology_scale(
    *,
    points: Optional[Dict[str, List[dict]]] = None,
    seed: int = 0,
    sim_cycles: int = 2000,
    injection_scale: float = 0.5,
) -> dict:
    """The whole sweep: every family, every ladder point."""
    points = points if points is not None else FULL_POINTS
    results = [
        _run_point(
            family,
            params,
            seed=seed,
            sim_cycles=sim_cycles,
            injection_scale=injection_scale,
        )
        for family, ladder in sorted(points.items())
        for params in ladder
    ]
    return {
        "seed": seed,
        "sim_cycles": sim_cycles,
        "injection_scale": injection_scale,
        "points": results,
    }


def _persist(data: dict) -> None:
    """Write the numbers to the harness results dir and the repo root."""
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(data, indent=2, sort_keys=True)
    (results_dir / "topology_scale.json").write_text(payload)
    ROOT_RESULT_PATH.write_text(payload + "\n")


def _report(data: dict) -> str:
    lines = ["topology-family scaling sweep (removal + compiled simulation)"]
    lines.append(
        f"  {'family':10s} {'switches':>8s} {'removal s':>10s} "
        f"{'sim s':>8s} {'VCs':>4s} {'latency':>8s}"
    )
    for point in data["points"]:
        lines.append(
            f"  {point['family']:10s} {point['switches']:8d} "
            f"{point['removal_seconds']:10.3f} {point['simulation_seconds']:8.3f} "
            f"{point['removal_added_vcs']:4d} {point['average_latency']:8.1f}"
        )
    return "\n".join(lines)


def _check(data: dict) -> List[str]:
    """Hard invariants every sweep point must satisfy."""
    problems = []
    for point in data["points"]:
        label = f"{point['family']} @ {point['switches']} switches"
        if not point["deadlock_free_after_removal"]:
            problems.append(f"{label}: CDG still cyclic after removal")
        if point["deadlocked"]:
            problems.append(f"{label}: protected design deadlocked in simulation")
        if point["packets_delivered"] <= 0:
            problems.append(f"{label}: simulation delivered no packets")
    return problems


def test_topology_scale_smoke(benchmark):
    """Harness entry: the smoke ladder, asserting the hard invariants."""
    data = benchmark.pedantic(
        lambda: run_topology_scale(points=SMOKE_POINTS, sim_cycles=400),
        rounds=1,
        iterations=1,
    )
    print("\n" + _report(data))
    _persist(data)
    assert not _check(data)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sim-cycles", type=int, default=None)
    parser.add_argument("--injection-scale", type=float, default=0.5)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI ladders (three modest sizes per family, 400 cycles)",
    )
    args = parser.parse_args(argv)
    points = SMOKE_POINTS if args.smoke else FULL_POINTS
    sim_cycles = args.sim_cycles or (400 if args.smoke else 2000)
    data = run_topology_scale(
        points=points,
        seed=args.seed,
        sim_cycles=sim_cycles,
        injection_scale=args.injection_scale,
    )
    print(_report(data))
    _persist(data)
    print(f"wrote {ROOT_RESULT_PATH}")
    problems = _check(data)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
