"""Before/after microbenchmark of the indexed routing engine.

The seed route computation (``engine="legacy"``) carries full path tuples in
its Dijkstra heap and prunes only strictly-worse entries, so every equal-cost
path is expanded — exponential tie blowup on the regular grids the ``mesh``
synthesis backend generates (an ``n x n`` mesh has ``C(dx+dy, dx)`` equal-hop
paths per flow).  The indexed engine (``engine="indexed"``, the default since
this change) keeps one label per switch over an int-relabelled graph and
reweights congestion incrementally, which is polynomial everywhere.

This benchmark pits the two engines against each other on:

* an **8x8 mesh** carrying the D36_8 benchmark traffic (the configuration
  the ``mesh`` backend produces for ``n_switches=64``) — the acceptance
  gate: the indexed engine must be at least ``5x`` faster and produce an
  identical route set;
* a **dense custom topology** (D36_8 at 18 switches with a doubled
  shortcut-link budget) — the application-specific side of the story;
* **all six SoC benchmarks** through the full synthesis pipeline — the
  serialized route sets of both engines must be *byte-identical*.

Results are persisted both to ``benchmarks/results/routing.json`` (the
harness convention) and to ``BENCH_routing.json`` at the repository root.
Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_routing.py           # full
    PYTHONPATH=src python benchmarks/bench_routing.py --smoke   # CI, <60 s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
ROOT_RESULT_PATH = REPO_ROOT / "BENCH_routing.json"

from repro.benchmarks.registry import BENCHMARK_NAMES, get_benchmark
from repro.model.design import NocDesign
from repro.model.traffic import CommunicationGraph
from repro.routing.shortest_path import ENGINE_INDEXED, ENGINE_LEGACY, compute_routes
from repro.synthesis.builder import (
    SynthesisConfig,
    build_switch_network,
    synthesize_design,
)
from repro.synthesis.partition import partition_cores
from repro.synthesis.regular import attach_cores_round_robin, mesh_topology

#: Acceptance threshold for the 8x8 mesh configuration (full benchmark).
FULL_SPEEDUP_THRESHOLD = 5.0
#: Looser threshold for the CI smoke configuration (6x6 mesh, one round —
#: absolute times are milliseconds and runner noise dominates).
SMOKE_SPEEDUP_THRESHOLD = 2.0


def routes_document(design: NocDesign) -> str:
    """Canonical JSON of a design's route set (for byte-identity checks)."""
    payload: Dict[str, List[str]] = {
        name: [channel.name for channel in route]
        for name, route in design.routes.items()
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _mesh_case(side: int, benchmark: str, seed: int) -> NocDesign:
    """The design the ``mesh`` backend would build for ``side**2`` switches,
    *unrouted* — the benchmark times route computation in isolation."""
    traffic = get_benchmark(benchmark, seed=seed)
    topology = mesh_topology(side, side, name=f"{benchmark}_{side}x{side}mesh")
    return NocDesign(
        name=topology.name,
        topology=topology,
        traffic=traffic,
        core_map=attach_cores_round_robin(topology, traffic),
    )


def _custom_case(benchmark: str, switch_count: int, seed: int) -> NocDesign:
    """A dense application-specific switch network, unrouted."""
    traffic = get_benchmark(benchmark, seed=seed)
    config = SynthesisConfig(
        n_switches=switch_count, extra_link_fraction=1.0, max_switch_degree=5, seed=seed
    )
    core_map = partition_cores(traffic, switch_count, balance_slack=config.balance_slack)
    name = f"{benchmark}_{switch_count}sw_dense"
    topology = build_switch_network(traffic, core_map, config, name=name)
    return NocDesign(name=name, topology=topology, traffic=traffic, core_map=core_map)


def _time_engines(design: NocDesign, rounds: int) -> Dict[str, object]:
    """Route ``design`` with both engines, timed; verify identical routes."""
    legacy_times: List[float] = []
    indexed_times: List[float] = []
    legacy_doc = indexed_doc = ""
    for _ in range(max(rounds, 1)):
        legacy = design.copy()
        start = time.perf_counter()
        compute_routes(legacy, engine=ENGINE_LEGACY)
        legacy_times.append(time.perf_counter() - start)
        legacy_doc = routes_document(legacy)

        indexed = design.copy()
        start = time.perf_counter()
        compute_routes(indexed, engine=ENGINE_INDEXED)
        indexed_times.append(time.perf_counter() - start)
        indexed_doc = routes_document(indexed)

    legacy_s = min(legacy_times)
    indexed_s = min(indexed_times)
    return {
        "design": design.name,
        "switches": design.topology.switch_count,
        "links": design.topology.link_count,
        "flows": design.traffic.flow_count,
        "legacy_seconds": legacy_s,
        "indexed_seconds": indexed_s,
        "speedup": legacy_s / indexed_s if indexed_s > 0 else float("inf"),
        "routes_identical": legacy_doc == indexed_doc,
    }


def _benchmark_equivalence(switch_count: int, seed: int) -> Dict[str, Dict[str, object]]:
    """Full-pipeline route-set byte-identity over all six SoC benchmarks."""
    results: Dict[str, Dict[str, object]] = {}
    for name in BENCHMARK_NAMES:
        traffic = get_benchmark(name, seed=seed)
        start = time.perf_counter()
        indexed = synthesize_design(traffic, SynthesisConfig(n_switches=switch_count, seed=seed))
        indexed_s = time.perf_counter() - start
        start = time.perf_counter()
        legacy = synthesize_design(
            traffic,
            SynthesisConfig(
                n_switches=switch_count, seed=seed, routing_engine=ENGINE_LEGACY
            ),
        )
        legacy_s = time.perf_counter() - start
        results[name] = {
            "flows": indexed.traffic.flow_count,
            "routes_byte_identical": routes_document(indexed) == routes_document(legacy),
            "indexed_pipeline_seconds": indexed_s,
            "legacy_pipeline_seconds": legacy_s,
        }
    return results


def run_routing_benchmark(
    *,
    mesh_side: int = 8,
    benchmark: str = "D36_8",
    custom_switches: int = 18,
    equivalence_switches: int = 14,
    seed: int = 0,
    rounds: int = 3,
) -> dict:
    """Time legacy vs. indexed routing and verify identical route sets."""
    mesh = _time_engines(_mesh_case(mesh_side, benchmark, seed), rounds)
    custom = _time_engines(_custom_case(benchmark, custom_switches, seed), rounds)
    equivalence = _benchmark_equivalence(equivalence_switches, seed)
    return {
        "seed": seed,
        "rounds": max(rounds, 1),
        "mesh": mesh,
        "custom": custom,
        "benchmark_equivalence": equivalence,
        "all_routes_identical": (
            bool(mesh["routes_identical"])
            and bool(custom["routes_identical"])
            and all(case["routes_byte_identical"] for case in equivalence.values())
        ),
    }


def _persist(data: dict) -> None:
    """Write the numbers to the harness results dir and the repo root."""
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(data, indent=2, sort_keys=True)
    (results_dir / "routing.json").write_text(payload)
    ROOT_RESULT_PATH.write_text(payload + "\n")


def _case_line(label: str, case: Dict[str, object]) -> str:
    return (
        f"  {label:<22}: {case['legacy_seconds'] * 1e3:8.1f} ms -> "
        f"{case['indexed_seconds'] * 1e3:7.1f} ms  "
        f"({case['speedup']:.1f}x, identical={case['routes_identical']})"
    )


def _report(data: dict) -> str:
    lines = [
        f"routing engine benchmark — seed {data['seed']}, {data['rounds']} round(s)",
        _case_line(f"mesh ({data['mesh']['design']})", data["mesh"]),
        _case_line(f"custom ({data['custom']['design']})", data["custom"]),
        "  six-benchmark route-set byte identity:",
    ]
    for name, case in data["benchmark_equivalence"].items():
        lines.append(
            f"    {name:<10}: identical={case['routes_byte_identical']} "
            f"({case['flows']} flows)"
        )
    return "\n".join(lines)


def test_routing_engine_speedup(benchmark):
    """Harness entry: full configuration, asserts the 5x acceptance bar."""
    data = benchmark.pedantic(run_routing_benchmark, rounds=1, iterations=1)
    print("\n" + _report(data))
    _persist(data)
    assert data["all_routes_identical"], "routing engines disagreed on a route set"
    assert data["mesh"]["speedup"] >= FULL_SPEEDUP_THRESHOLD, (
        f"indexed engine mesh speedup {data['mesh']['speedup']:.2f}x below "
        f"{FULL_SPEEDUP_THRESHOLD}x"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="D36_8")
    parser.add_argument("--mesh-side", type=int, default=8)
    parser.add_argument("--custom-switches", type=int, default=18)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (6x6 mesh, 1 round, looser threshold)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        data = run_routing_benchmark(
            mesh_side=6,
            benchmark=args.benchmark,
            custom_switches=12,
            equivalence_switches=10,
            seed=args.seed,
            rounds=1,
        )
        threshold = SMOKE_SPEEDUP_THRESHOLD
    else:
        data = run_routing_benchmark(
            mesh_side=args.mesh_side,
            benchmark=args.benchmark,
            custom_switches=args.custom_switches,
            seed=args.seed,
            rounds=args.rounds,
        )
        threshold = FULL_SPEEDUP_THRESHOLD
    print(_report(data))
    _persist(data)
    print(f"wrote {ROOT_RESULT_PATH}")
    if not data["all_routes_identical"]:
        print("FAIL: routing engines disagreed on a route set", file=sys.stderr)
        return 1
    if data["mesh"]["speedup"] < threshold:
        print(
            f"FAIL: mesh speedup {data['mesh']['speedup']:.2f}x < {threshold}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
