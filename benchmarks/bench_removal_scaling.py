"""End-to-end removal + estimation scaling: context engine vs. PR 3 baseline.

One sweep point of the Figure 8-10 harness pays for a full removal run
*plus* power and area estimation.  After PR 3 the remaining per-point costs
were exactly the ones the ROADMAP listed: every iteration rebuilt both cost
tables from dict/tuple scans over all routes, every break re-scanned every
route for the affected flows, and the estimators re-derived the router
loads once for power and once for area.  The ``"context"`` removal engine
(:class:`~repro.perf.design_context.DesignContext` +
:mod:`repro.perf.cost_index`) and the fused
:func:`~repro.power.estimator.estimate_power_and_area` close all three.

This benchmark measures the full removal+estimation pipeline on D36_8 at
20/28/35 switches and asserts:

* the context engine and the PR 3 baseline (``engine="incremental"``)
  produce an *identical* break-action sequence at every point;
* on every SoC benchmark a cross-checked context run yields byte-identical
  route sets to the seed (rebuild) engine;
* the end-to-end speedup at the largest point is at least ``2x``;
* the design context actually reused cached state (reuse counters > 0), so
  a change that silently falls back to rebuilding fails here and not in a
  profiler three PRs later.

The initial elementary-cycle count (an optional diagnostic, identical cost
for both engines) is disabled so the comparison measures the algorithm, not
networkx's Johnson enumeration.

Results go to ``benchmarks/results/removal_scaling.json`` and
``BENCH_removal_scaling.json`` at the repository root.  Runnable
standalone::

    PYTHONPATH=src python benchmarks/bench_removal_scaling.py           # full
    PYTHONPATH=src python benchmarks/bench_removal_scaling.py --smoke   # CI, <60 s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
ROOT_RESULT_PATH = REPO_ROOT / "BENCH_removal_scaling.json"

from repro.benchmarks.registry import get_benchmark, list_benchmarks
from repro.core.removal import remove_deadlocks
from repro.perf.design_context import counters
from repro.power.estimator import estimate_area, estimate_power, estimate_power_and_area
from repro.routing.shortest_path import compute_routes
from repro.synthesis.builder import SynthesisConfig, synthesize_design

#: Acceptance threshold at the largest full-configuration point.
FULL_SPEEDUP_THRESHOLD = 2.0
#: Looser threshold for the CI smoke configuration (small topology, one
#: round — process noise on shared runners dominates small absolute times).
SMOKE_SPEEDUP_THRESHOLD = 1.2
#: Switch count of the six-benchmark cross-check (the Figure 10 setting).
CROSS_CHECK_SWITCHES = 14


def _action_signature(result) -> List[tuple]:
    """Comparable summary of a removal run's break sequence."""
    return [
        (
            action.iteration,
            action.direction,
            tuple(c.name for c in action.cycle),
            action.broken_edge[0].name,
            action.broken_edge[1].name,
            action.cost,
            action.flows_rerouted,
            tuple(sorted((old.name, new.name) for old, new in action.channels_added.items())),
        )
        for action in result.actions
    ]


def _route_signature(design) -> Dict[str, tuple]:
    """Byte-comparable route set of a design."""
    return {
        name: tuple(channel.name for channel in design.routes.route(name))
        for name in design.routes.flow_names
    }


def _baseline_point(design):
    """PR 3 pipeline: incremental engine + separate power/area estimation."""
    result = remove_deadlocks(design, engine="incremental", count_initial_cycles=False)
    estimate_power(design)
    estimate_area(design)
    estimate_power(result.design)
    estimate_area(result.design)
    return result


def _context_point(design):
    """This PR's pipeline: context engine + fused power/area estimation."""
    result = remove_deadlocks(design, engine="context", count_initial_cycles=False)
    estimate_power_and_area(design)
    estimate_power_and_area(result.design)
    return result


def run_removal_scaling(
    *,
    benchmark: str = "D36_8",
    switch_counts: Sequence[int] = (20, 28, 35),
    seed: int = 0,
    rounds: int = 3,
) -> dict:
    """Time baseline vs. context pipelines and verify identical actions."""
    traffic = get_benchmark(benchmark, seed=seed)
    points = []
    for count in switch_counts:
        design = synthesize_design(
            traffic, SynthesisConfig(n_switches=count, seed=seed)
        )
        # Routing-state reuse probe: re-routing the synthesized design must
        # be served by the context's cached switch graph (the ROADMAP item
        # "reuse one SwitchGraph across repeated compute_routes calls").
        counters.reset()
        compute_routes(design)
        routing_reuse = counters.snapshot()

        baseline_times: List[float] = []
        context_times: List[float] = []
        baseline_result = context_result = None
        counters.reset()
        for _ in range(max(rounds, 1)):
            start = time.perf_counter()
            baseline_result = _baseline_point(design)
            baseline_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            context_result = _context_point(design)
            context_times.append(time.perf_counter() - start)
        reuse = counters.snapshot()
        baseline_s = min(baseline_times)
        context_s = min(context_times)
        points.append(
            {
                "switch_count": count,
                "iterations": context_result.iterations,
                "added_vcs": context_result.added_vc_count,
                "baseline_seconds": baseline_s,
                "context_seconds": context_s,
                "speedup": baseline_s / context_s if context_s > 0 else float("inf"),
                "actions_identical": _action_signature(baseline_result)
                == _action_signature(context_result),
                "routing_reuse": routing_reuse,
                "context_reuse": reuse,
            }
        )

    cross_checks = []
    for name in list_benchmarks():
        design = synthesize_design(
            get_benchmark(name, seed=seed),
            SynthesisConfig(n_switches=CROSS_CHECK_SWITCHES, seed=seed),
        )
        seed_result = remove_deadlocks(design, engine="rebuild")
        # cross_check=True re-derives every cost table with the reference
        # builder and verifies the CDG index against a rebuild per break.
        context_result = remove_deadlocks(design, engine="context", cross_check=True)
        cross_checks.append(
            {
                "benchmark": name,
                "actions_identical": _action_signature(seed_result)
                == _action_signature(context_result),
                "routes_identical": _route_signature(seed_result.design)
                == _route_signature(context_result.design),
            }
        )

    largest = points[-1]
    return {
        "benchmark": benchmark,
        "seed": seed,
        "rounds": max(rounds, 1),
        "switch_counts": list(switch_counts),
        "points": points,
        "cross_checks": cross_checks,
        "largest_point_speedup": largest["speedup"],
        "all_actions_identical": all(p["actions_identical"] for p in points)
        and all(c["actions_identical"] for c in cross_checks),
        "all_routes_identical": all(c["routes_identical"] for c in cross_checks),
    }


def _persist(data: dict) -> None:
    """Write the numbers to the harness results dir and the repo root."""
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(data, indent=2, sort_keys=True)
    (results_dir / "removal_scaling.json").write_text(payload)
    ROOT_RESULT_PATH.write_text(payload + "\n")


def _report(data: dict) -> str:
    lines = [
        f"removal scaling benchmark — {data['benchmark']} (seed {data['seed']})",
        f"{'switches':>9} {'baseline':>10} {'context':>10} {'speedup':>8} "
        f"{'iters':>6} {'identical':>9}",
    ]
    for point in data["points"]:
        lines.append(
            f"{point['switch_count']:>9} {point['baseline_seconds'] * 1e3:>8.1f}ms "
            f"{point['context_seconds'] * 1e3:>8.1f}ms {point['speedup']:>7.2f}x "
            f"{point['iterations']:>6} {str(point['actions_identical']):>9}"
        )
    ok = all(c["actions_identical"] and c["routes_identical"] for c in data["cross_checks"])
    lines.append(
        f"  cross-check on {len(data['cross_checks'])} benchmarks @ "
        f"{CROSS_CHECK_SWITCHES} switches: "
        + ("identical actions + byte-identical routes" if ok else "FAILED")
    )
    largest = data["points"][-1]
    lines.append(
        "  context reuse at largest point: graph reuses "
        f"{largest['routing_reuse']['graph_reuses']} (re-route probe), "
        f"route deltas {largest['context_reuse']['route_deltas']}, "
        f"indexed cost tables {largest['context_reuse']['cost_tables_indexed']}, "
        f"forked contexts {largest['context_reuse']['contexts_forked']}"
    )
    return "\n".join(lines)


def _check(data: dict, threshold: float) -> List[str]:
    """Acceptance checks; returns a list of failure messages."""
    failures = []
    if not data["all_actions_identical"]:
        failures.append("engines disagreed on a break sequence")
    if not data["all_routes_identical"]:
        failures.append("cross-checked route sets differ from the seed engine")
    if data["largest_point_speedup"] < threshold:
        failures.append(
            f"speedup {data['largest_point_speedup']:.2f}x below {threshold}x "
            f"at the largest point"
        )
    largest = data["points"][-1]
    routing_reuse = largest["routing_reuse"]
    context_reuse = largest["context_reuse"]
    if routing_reuse["graph_reuses"] <= 0:
        failures.append(
            "re-routing the design rebuilt the switch graph instead of "
            "reusing the context's cached one"
        )
    if context_reuse["route_deltas"] <= 0 or context_reuse["cost_tables_indexed"] <= 0:
        failures.append(
            "the context removal engine did not exercise its indexed state "
            f"(route deltas {context_reuse['route_deltas']}, indexed cost "
            f"tables {context_reuse['cost_tables_indexed']})"
        )
    if context_reuse["contexts_forked"] <= 0:
        failures.append(
            "removal runs rebuilt the CDG index on every design.copy() "
            "instead of forking the source context's index"
        )
    return failures


def test_removal_scaling_speedup(benchmark, context_counters):
    """Harness entry: full configuration, asserts the 2x acceptance bar.

    ``context_counters`` (reset by the fixture) backs the reuse checks in
    :func:`_check`: a regression in the design-context cache hits fails the
    benchmark explicitly rather than surfacing as a slower number.
    """
    data = benchmark.pedantic(run_removal_scaling, rounds=1, iterations=1)
    print("\n" + _report(data))
    _persist(data)
    failures = _check(data, FULL_SPEEDUP_THRESHOLD)
    assert not failures, "; ".join(failures)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="D36_8")
    parser.add_argument("--switches", type=int, nargs="+", default=[20, 28, 35])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (20 switches, 1 round, looser threshold)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        data = run_removal_scaling(
            benchmark=args.benchmark, switch_counts=(20,), seed=args.seed, rounds=1
        )
        threshold = SMOKE_SPEEDUP_THRESHOLD
    else:
        data = run_removal_scaling(
            benchmark=args.benchmark,
            switch_counts=tuple(args.switches),
            seed=args.seed,
            rounds=args.rounds,
        )
        threshold = FULL_SPEEDUP_THRESHOLD
    print(_report(data))
    _persist(data)
    print(f"wrote {ROOT_RESULT_PATH}")
    failures = _check(data, threshold)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
