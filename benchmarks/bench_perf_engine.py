"""Before/after microbenchmark of the incremental removal engine.

The Section 5 runtime claim ("runs within minutes even for the largest
benchmark and is scalable") left an order of magnitude on the table in the
seed reproduction: the outer loop rebuilt the CDG from scratch after every
break and BFS-searched every vertex for the smallest cycle.  This benchmark
pits the seed behaviour (``engine="rebuild"``) against the performance core
(``engine="incremental"``: route-delta CDG maintenance + SCC-pruned indexed
cycle search) on the paper's largest configuration — D36_8 at 35 switches —
and asserts:

* the two engines produce an *identical* break-action sequence on seed=0;
* the incremental engine is at least ``3x`` faster end-to-end.

Results are persisted both to ``benchmarks/results/perf_engine.json`` (the
harness convention) and to ``BENCH_perf_engine.json`` at the repository
root.  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py           # full
    PYTHONPATH=src python benchmarks/bench_perf_engine.py --smoke   # CI, <60 s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
ROOT_RESULT_PATH = REPO_ROOT / "BENCH_perf_engine.json"

from repro.benchmarks.registry import get_benchmark
from repro.core.cdg import build_cdg
from repro.core.cycles import find_smallest_cycle
from repro.core.removal import remove_deadlocks
from repro.perf.cdg_index import CDGIndex
from repro.perf.cycle_search import IncrementalCycleSearch
from repro.synthesis.builder import SynthesisConfig, synthesize_design

#: Acceptance threshold of the full benchmark (D36_8 @ 35 switches).
FULL_SPEEDUP_THRESHOLD = 3.0
#: Looser threshold for the CI smoke configuration (smaller topology, one
#: round — process noise on shared runners dominates small absolute times).
SMOKE_SPEEDUP_THRESHOLD = 1.5


def _action_signature(result) -> List[tuple]:
    """Comparable summary of a removal run's break sequence."""
    return [
        (
            action.iteration,
            action.direction,
            tuple(c.name for c in action.cycle),
            action.broken_edge[0].name,
            action.broken_edge[1].name,
            action.cost,
            action.flows_rerouted,
            tuple(sorted((old.name, new.name) for old, new in action.channels_added.items())),
        )
        for action in result.actions
    ]


def run_perf_engine(
    *, benchmark: str = "D36_8", switch_count: int = 35, seed: int = 0, rounds: int = 3
) -> dict:
    """Time rebuild vs. incremental removal and verify identical actions."""
    traffic = get_benchmark(benchmark, seed=seed)
    design = synthesize_design(traffic, SynthesisConfig(n_switches=switch_count, seed=seed))

    # One-shot component comparison: a single smallest-cycle query on the
    # initial (cyclic) CDG, seed search vs. indexed search.
    cdg = build_cdg(design)
    start = time.perf_counter()
    seed_cycle = find_smallest_cycle(cdg)
    seed_search_seconds = time.perf_counter() - start
    index = CDGIndex.from_routes(design.routes)
    start = time.perf_counter()
    indexed_cycle = IncrementalCycleSearch(index).find_smallest()
    indexed_search_seconds = time.perf_counter() - start
    assert seed_cycle == indexed_cycle, "indexed cycle search diverged from seed"

    before_times: List[float] = []
    after_times: List[float] = []
    before_result = after_result = None
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        before_result = remove_deadlocks(design, engine="rebuild")
        before_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        after_result = remove_deadlocks(design, engine="incremental")
        after_times.append(time.perf_counter() - start)

    before_sig = _action_signature(before_result)
    after_sig = _action_signature(after_result)
    actions_identical = before_sig == after_sig

    before_s = min(before_times)
    after_s = min(after_times)
    return {
        "benchmark": benchmark,
        "switch_count": switch_count,
        "seed": seed,
        "rounds": max(rounds, 1),
        "iterations": after_result.iterations,
        "added_vcs": after_result.added_vc_count,
        "initial_cycle_count": after_result.initial_cycle_count,
        "before_rebuild_seconds": before_s,
        "after_incremental_seconds": after_s,
        "speedup": before_s / after_s if after_s > 0 else float("inf"),
        "smallest_cycle_search_before_seconds": seed_search_seconds,
        "smallest_cycle_search_after_seconds": indexed_search_seconds,
        "actions_identical": actions_identical,
        "break_sequence_length": len(after_sig),
    }


def _persist(data: dict) -> None:
    """Write the numbers to the harness results dir and the repo root."""
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(data, indent=2, sort_keys=True)
    (results_dir / "perf_engine.json").write_text(payload)
    ROOT_RESULT_PATH.write_text(payload + "\n")


def _report(data: dict) -> str:
    return "\n".join(
        [
            f"perf engine benchmark — {data['benchmark']} @ "
            f"{data['switch_count']} switches (seed {data['seed']})",
            f"  iterations / VCs added : {data['iterations']} / {data['added_vcs']}",
            f"  rebuild engine         : {data['before_rebuild_seconds']:.3f} s",
            f"  incremental engine     : {data['after_incremental_seconds']:.3f} s",
            f"  end-to-end speedup     : {data['speedup']:.2f}x",
            f"  smallest-cycle search  : {data['smallest_cycle_search_before_seconds'] * 1e3:.1f} ms"
            f" -> {data['smallest_cycle_search_after_seconds'] * 1e3:.1f} ms",
            f"  identical break actions: {data['actions_identical']}",
        ]
    )


def test_perf_engine_speedup(benchmark):
    """Harness entry: full configuration, asserts the 3x acceptance bar."""
    data = benchmark.pedantic(run_perf_engine, rounds=1, iterations=1)
    print("\n" + _report(data))
    _persist(data)
    assert data["actions_identical"], "engines disagreed on the break sequence"
    assert data["speedup"] >= FULL_SPEEDUP_THRESHOLD, (
        f"incremental engine speedup {data['speedup']:.2f}x below "
        f"{FULL_SPEEDUP_THRESHOLD}x"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="D36_8")
    parser.add_argument("--switches", type=int, default=35)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (18 switches, 1 round, looser threshold)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        data = run_perf_engine(
            benchmark=args.benchmark, switch_count=18, seed=args.seed, rounds=1
        )
        threshold = SMOKE_SPEEDUP_THRESHOLD
    else:
        data = run_perf_engine(
            benchmark=args.benchmark,
            switch_count=args.switches,
            seed=args.seed,
            rounds=args.rounds,
        )
        threshold = FULL_SPEEDUP_THRESHOLD
    print(_report(data))
    _persist(data)
    print(f"wrote {ROOT_RESULT_PATH}")
    if not data["actions_identical"]:
        print("FAIL: engines disagreed on the break sequence", file=sys.stderr)
        return 1
    if data["speedup"] < threshold:
        print(f"FAIL: speedup {data['speedup']:.2f}x < {threshold}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
