"""Network performance of the protected designs (added experiment).

The paper establishes that deadlock removal is far cheaper than resource
ordering in VCs, power and area; this benchmark adds the performance side:
latency and delivered throughput of the two protected variants (and of the
unprotected design, where it survives) across injection rates, measured with
the flit-level wormhole simulator.

What the results show: at nominal and moderately elevated loads both
protection schemes deliver identical latency and throughput — resource
ordering's many extra VCs buy nothing there.  Only deep in saturation does
the ordering variant's larger buffer pool translate into lower latency, i.e.
its extra channels act as (very expensive) general-purpose buffering rather
than as a deadlock mechanism.  The unprotected ring variant deadlocks at
elevated load instead of saturating gracefully.
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.analysis.metrics import format_table
from repro.analysis.performance import compare_performance
from repro.core.removal import remove_deadlocks
from repro.examples_data.paper_ring import paper_ring_design
from repro.routing.ordering import apply_resource_ordering
from repro.benchmarks.registry import get_benchmark
from repro.synthesis.builder import SynthesisConfig, synthesize_design


def test_ring_latency_throughput(benchmark):
    """Latency/throughput of the ring example variants across load."""
    def run():
        design = paper_ring_design()
        removal = remove_deadlocks(design).design
        ordering = apply_resource_ordering(design).design
        return compare_performance(
            {"unprotected": design, "deadlock removal": removal, "resource ordering": ordering},
            injection_scales=(1.0, 3.0, 6.0),
            max_cycles=4000,
            buffer_depth=2,
            seed=1,
        )

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    print(banner("Latency / throughput across injection scales (ring example)"))
    rows = []
    for label, sweep in sweeps.items():
        for point in sweep.points:
            rows.append(
                [
                    label,
                    point.injection_scale,
                    round(point.delivered_flits_per_cycle, 3),
                    round(point.average_latency, 1),
                    "DEADLOCK" if point.deadlocked else "ok",
                ]
            )
    print(
        format_table(
            ["variant", "injection scale", "flits/cycle", "avg latency", "status"], rows
        )
    )
    save_results(
        "latency_throughput_ring",
        {label: sweep.as_rows() for label, sweep in sweeps.items()},
    )

    unprotected = sweeps["unprotected"]
    removal = sweeps["deadlock removal"]
    ordering = sweeps["resource ordering"]
    assert any(point.deadlocked for point in unprotected.points)
    assert not any(point.deadlocked for point in removal.points)
    assert not any(point.deadlocked for point in ordering.points)
    # Both protected variants deliver comparable throughput at the top load.
    top_removal = removal.points[-1].delivered_flits_per_cycle
    top_ordering = ordering.points[-1].delivered_flits_per_cycle
    assert top_removal >= 0.7 * top_ordering


def test_benchmark_design_latency(benchmark):
    """Latency of the protected D26_media design at nominal and 2x load."""
    def run():
        traffic = get_benchmark("D26_media")
        design = synthesize_design(traffic, SynthesisConfig(n_switches=14))
        removal = remove_deadlocks(design).design
        ordering = apply_resource_ordering(design).design
        return compare_performance(
            {"deadlock removal": removal, "resource ordering": ordering},
            injection_scales=(1.0, 2.0),
            max_cycles=2500,
            seed=0,
        )

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    print(banner("Latency of the protected D26_media design (14 switches)"))
    rows = []
    for label, sweep in sweeps.items():
        for point in sweep.points:
            rows.append(
                [
                    label,
                    point.injection_scale,
                    round(point.delivered_flits_per_cycle, 3),
                    round(point.average_latency, 1),
                    point.packets_delivered,
                ]
            )
    print(
        format_table(
            ["variant", "injection scale", "flits/cycle", "avg latency", "packets"], rows
        )
    )
    save_results(
        "latency_throughput_d26",
        {label: sweep.as_rows() for label, sweep in sweeps.items()},
    )
    for sweep in sweeps.values():
        assert not any(point.deadlocked for point in sweep.points)
        assert all(point.packets_delivered > 0 for point in sweep.points)
