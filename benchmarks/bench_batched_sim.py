"""Batched simulation engine vs. per-spec compiled execution.

The batched engine (:mod:`repro.perf.batch_engine`) runs a whole latency
grid as one structure-of-arrays numpy program per design variant; the
:class:`~repro.api.runner.Runner` batch planner threads it through the
experiment API.  Batching must be invisible except in wall clock, so this
benchmark measures *and* proves, on a 16-point D36_8 @ 35-switch latency
grid (full configuration):

* **end-to-end speedup** — per-spec ``compiled`` execution (the pre-batch
  runner semantics: synthesized design shared, removal re-run per spec,
  every load point simulated alone) against a cold-cache ``Runner`` run of
  the same grid under ``sim_engine: "batched"`` (one removal via the
  shared cost bundle + one array program per design variant), asserting
  ``>= 4x`` in the full configuration;
* **engine-only speedup** — the summed solo ``compiled`` simulation time
  against the batched array program on the same designs, reported and
  asserted at a conservative floor (wall-clock noise on shared runners
  dominates the tighter bound);
* **per-lane field identity** — every spec's every variant re-run under
  ``cross_check=True``, which raises on any ``SimulationStats`` field
  divergence between the batched lanes and the ``compiled`` reference;
* **record byte-identity** — the cached ``RunResult`` documents written by
  the batched run compared byte-for-byte against solo
  :func:`~repro.api.runner.execute_spec` executions of every spec in the
  grid (same cost bundle, fresh cache).

Results go to ``benchmarks/results/batched_sim.json`` and
``BENCH_batched_sim.json`` at the repository root.  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_batched_sim.py           # full
    PYTHONPATH=src python benchmarks/bench_batched_sim.py --smoke   # CI, <60 s
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
ROOT_RESULT_PATH = REPO_ROOT / "BENCH_batched_sim.json"

from repro.analysis.experiments import compare_methods
from repro.analysis.performance import measure_load_point
from repro.api.cache import ArtifactCache
from repro.api.runner import (
    COST_KIND,
    DESIGN_KIND,
    RESULT_KIND,
    SIMULATED_VARIANTS,
    Runner,
    execute_spec,
    execute_spec_batch,
)
from repro.api.spec import ExperimentPlan, RunSpec

#: End-to-end acceptance threshold at the headline grid (D36_8 @ 35).
FULL_SPEEDUP_THRESHOLD = 4.0
#: Conservative floor for the engine-only ratio (reported for context; the
#: acceptance bar is end-to-end).
FULL_SIM_ONLY_THRESHOLD = 2.0
#: Loose smoke thresholds: tiny topologies and short runs put process
#: noise on shared CI runners in the same order as the measured times.
SMOKE_SPEEDUP_THRESHOLD = 1.3
SMOKE_SIM_ONLY_THRESHOLD = 0.7

#: The headline grid: 16 load points spanning the latency curve.
FULL_SCALES = (
    0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0,
    1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0,
)
SMOKE_SCALES = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)


def _grid_specs(benchmark: str, switches: int, seed: int, scales, sim_cycles: int):
    return [
        RunSpec(
            benchmark=benchmark,
            switch_count=switches,
            seed=seed,
            injection_scale=scale,
            sim_cycles=sim_cycles,
            sim_engine="batched",
        )
        for scale in scales
    ]


def _baseline_variants(spec: RunSpec, design_memo: Dict[str, object]) -> Dict[str, Dict]:
    """Per-spec ``compiled`` execution with pre-batch runner semantics.

    The synthesized design is shared across the grid (the old design
    cache); removal, ordering and the power/area models re-run per spec,
    and every load point simulates its three variants alone — exactly what
    a cold-cache sweep paid before the cost-bundle + batch-planner layer.
    """
    key = spec.synthesis_fingerprint()
    comparison = compare_methods(
        spec.benchmark,
        spec.switch_count,
        seed=spec.seed,
        engine=spec.engine,
        ordering_strategy=spec.ordering_strategy,
        unprotected=design_memo.get(key),
    )
    design_memo[key] = comparison.unprotected
    designs = {
        "unprotected": comparison.unprotected,
        "removal": comparison.removal.design,
        "ordering": comparison.ordering.design,
    }
    return {
        variant: measure_load_point(
            designs[variant],
            injection_scale=spec.injection_scale,
            max_cycles=spec.sim_cycles,
            buffer_depth=spec.buffer_depth,
            seed=spec.seed,
            sim_engine="compiled",
        )
        for variant in SIMULATED_VARIANTS
    }


def run_batched_benchmark(
    *,
    benchmark: str = "D36_8",
    switches: int = 35,
    seed: int = 0,
    scales=FULL_SCALES,
    sim_cycles: int = 3000,
) -> dict:
    """Time, cross-check and byte-compare the batched grid execution."""
    specs = _grid_specs(benchmark, switches, seed, scales, sim_cycles)
    plan = ExperimentPlan(name="bench-batched", specs=specs)

    # --- baseline: per-spec compiled execution (pre-batch semantics) ----
    design_memo: Dict[str, object] = {}
    start = time.perf_counter()
    baseline = [_baseline_variants(spec, design_memo) for spec in specs]
    per_spec_seconds = time.perf_counter() - start

    work_dir = Path(tempfile.mkdtemp(prefix="bench_batched_"))
    try:
        # --- batched: cold-cache Runner execution of the same grid ------
        batched_cache = work_dir / "batched-cache"
        start = time.perf_counter()
        plan_result = Runner(cache_dir=batched_cache).run(plan)
        batched_seconds = time.perf_counter() - start

        # The grids must agree point by point, variant by variant (the
        # records' metrics are plain JSON scalars, so == is exact).
        grids_identical = all(
            result.simulation["variants"] == expected
            for result, expected in zip(plan_result.results, baseline)
        )

        # --- engine-only ratio on the removal design --------------------
        from repro.core.removal import remove_deadlocks

        unprotected = next(iter(design_memo.values()))  # the shared design
        protected = remove_deadlocks(unprotected).design
        config_points = [
            {"injection_scale": spec.injection_scale, "seed": spec.seed}
            for spec in specs
        ]
        start = time.perf_counter()
        solo_metrics = [
            measure_load_point(
                protected,
                injection_scale=point["injection_scale"],
                max_cycles=sim_cycles,
                seed=point["seed"],
                sim_engine="compiled",
            )
            for point in config_points
        ]
        solo_sim_seconds = time.perf_counter() - start
        from repro.analysis.performance import measure_load_grid

        start = time.perf_counter()
        grid_metrics = measure_load_grid(
            protected, config_points, max_cycles=sim_cycles
        )
        batched_sim_seconds = time.perf_counter() - start
        sim_lanes_identical = solo_metrics == grid_metrics

        # --- cross_check: per-lane SimulationStats field identity -------
        execute_spec_batch(specs, None, cross_check=True)  # raises on divergence

        # --- record byte-identity: batched cache vs solo re-execution ---
        batch_store = ArtifactCache(batched_cache)
        solo_cache_dir = work_dir / "solo-cache"
        for kind in (DESIGN_KIND, COST_KIND):
            if (batched_cache / kind).is_dir():
                shutil.copytree(batched_cache / kind, solo_cache_dir / kind)
        solo_store = ArtifactCache(solo_cache_dir)
        records_identical = True
        for spec in specs:
            execute_spec(spec, solo_store)
            batch_bytes = batch_store._path(RESULT_KIND, spec.fingerprint()).read_text()
            solo_bytes = solo_store._path(RESULT_KIND, spec.fingerprint()).read_text()
            if batch_bytes != solo_bytes:
                records_identical = False
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    return {
        "benchmark": benchmark,
        "switches": switches,
        "seed": seed,
        "sim_cycles": sim_cycles,
        "grid_points": len(specs),
        "injection_scales": list(scales),
        "per_spec_seconds": per_spec_seconds,
        "batched_seconds": batched_seconds,
        "end_to_end_speedup": (
            per_spec_seconds / batched_seconds if batched_seconds > 0 else float("inf")
        ),
        "solo_sim_seconds": solo_sim_seconds,
        "batched_sim_seconds": batched_sim_seconds,
        "sim_only_speedup": (
            solo_sim_seconds / batched_sim_seconds
            if batched_sim_seconds > 0
            else float("inf")
        ),
        "grids_identical": grids_identical,
        "sim_lanes_identical": sim_lanes_identical,
        "cross_check_passed": True,  # execute_spec_batch raises otherwise
        "records_identical": records_identical,
    }


def _persist(data: dict) -> None:
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(data, indent=2, sort_keys=True)
    (results_dir / "batched_sim.json").write_text(payload)
    ROOT_RESULT_PATH.write_text(payload + "\n")


def _report(data: dict) -> str:
    return "\n".join(
        [
            f"batched simulation benchmark — {data['benchmark']} @ "
            f"{data['switches']} switches, {data['grid_points']}-point grid "
            f"(seed {data['seed']}, {data['sim_cycles']} cycles)",
            f"  per-spec compiled execution: {data['per_spec_seconds']:8.2f}s",
            f"  batched Runner execution:    {data['batched_seconds']:8.2f}s "
            f"({data['end_to_end_speedup']:.2f}x)",
            f"  solo sims on removal design: {data['solo_sim_seconds']:8.2f}s",
            f"  batched array program:       {data['batched_sim_seconds']:8.2f}s "
            f"({data['sim_only_speedup']:.2f}x)",
            f"  grids identical: {data['grids_identical']}  "
            f"sim lanes identical: {data['sim_lanes_identical']}  "
            f"cross-check passed: {data['cross_check_passed']}  "
            f"records byte-identical: {data['records_identical']}",
        ]
    )


def _check(data: dict, threshold: float, sim_threshold: float) -> List[str]:
    failures = []
    for flag in (
        "grids_identical",
        "sim_lanes_identical",
        "cross_check_passed",
        "records_identical",
    ):
        if not data[flag]:
            failures.append(f"{flag} is False — batching is not invisible")
    if data["end_to_end_speedup"] < threshold:
        failures.append(
            f"end-to-end speedup {data['end_to_end_speedup']:.2f}x below "
            f"{threshold}x on the {data['grid_points']}-point grid"
        )
    if data["sim_only_speedup"] < sim_threshold:
        failures.append(
            f"engine-only speedup {data['sim_only_speedup']:.2f}x below "
            f"{sim_threshold}x"
        )
    return failures


def test_batched_sim_speedup(benchmark, context_counters):
    """Harness entry: full configuration, asserts the 4x acceptance bar."""
    data = benchmark.pedantic(run_batched_benchmark, rounds=1, iterations=1)
    print("\n" + _report(data))
    _persist(data)
    failures = _check(data, FULL_SPEEDUP_THRESHOLD, FULL_SIM_ONLY_THRESHOLD)
    assert not failures, "; ".join(failures)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="D36_8")
    parser.add_argument("--switches", type=int, default=35)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (4-point grid, short horizon, loose "
        "thresholds; keeps the headline topology so the array program has "
        "enough lanes/channels to win)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        data = run_batched_benchmark(
            benchmark=args.benchmark,
            switches=args.switches,
            seed=args.seed,
            scales=SMOKE_SCALES,
            sim_cycles=600,
        )
        thresholds = (SMOKE_SPEEDUP_THRESHOLD, SMOKE_SIM_ONLY_THRESHOLD)
    else:
        data = run_batched_benchmark(
            benchmark=args.benchmark,
            switches=args.switches,
            seed=args.seed,
        )
        thresholds = (FULL_SPEEDUP_THRESHOLD, FULL_SIM_ONLY_THRESHOLD)
    print(_report(data))
    _persist(data)
    print(f"wrote {ROOT_RESULT_PATH}")
    failures = _check(data, *thresholds)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
