"""Wormhole simulation: compiled array engine vs. legacy object engine.

The compiled engine (:mod:`repro.perf.sim_engine`) must be measurably
faster than the seed object-per-flit simulator while producing
**field-identical** :class:`~repro.simulation.stats.SimulationStats` — the
simulation is the runtime evidence behind the paper's deadlock-freedom
claims, so the fast engine earning its keep means nothing if its verdicts
could drift.  This benchmark:

* times both engines end-to-end (injection + drain) on the deadlock-free
  D36_8 design at 35 switches and on an 8x8 XY mesh, asserting the
  compiled engine's speedup at the D36_8 point is at least ``3x`` (full
  configuration);
* asserts the stats of every timed pair are identical field by field;
* cross-checks (``simulate_design(..., cross_check=True)`` — the compiled
  run re-executed on the legacy engine and compared stat-by-stat) on all
  six SoC benchmarks at 14 switches **and** under all four synthetic
  traffic scenarios (uniform, hotspot, transpose, bursty) plus the paper's
  ``flows`` traffic;
* asserts the per-design :class:`~repro.perf.sim_engine.SimulationTemplate`
  is compiled once and *reused* across a design's runs
  (``counters.sim_template_reuses``), so a regression that recompiles per
  run fails loudly here.

Results go to ``benchmarks/results/simulation.json`` and
``BENCH_simulation.json`` at the repository root.  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_simulation.py           # full
    PYTHONPATH=src python benchmarks/bench_simulation.py --smoke   # CI, <60 s
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
ROOT_RESULT_PATH = REPO_ROOT / "BENCH_simulation.json"

from repro.benchmarks.registry import get_benchmark, list_benchmarks
from repro.core.removal import remove_deadlocks
from repro.perf.design_context import counters
from repro.simulation.simulator import (
    SimulationConfig,
    simulate_design,
    stats_divergences,
)
from repro.simulation.stats import SimulationStats
from repro.synthesis.builder import SynthesisConfig, synthesize_design
from repro.synthesis.families import family_design
from repro.synthesis.regular import default_mesh_traffic

#: Acceptance threshold at the headline point (D36_8 @ 35 switches).
FULL_SPEEDUP_THRESHOLD = 3.0
#: Looser threshold for the CI smoke configuration (small topology, short
#: runs — process noise on shared runners dominates small absolute times).
SMOKE_SPEEDUP_THRESHOLD = 1.5
#: Switch count of the six-benchmark cross-check (the Figure 10 setting).
CROSS_CHECK_SWITCHES = 14
#: Every registered scenario the cross-check sweep exercises.
SCENARIOS = ("flows", "uniform", "hotspot", "transpose", "bursty")


def _stats_identical(a: SimulationStats, b: SimulationStats) -> bool:
    return not stats_divergences(a, b)


def _protected_design(benchmark: str, switches: int, seed: int):
    traffic = get_benchmark(benchmark, seed=seed)
    design = synthesize_design(traffic, SynthesisConfig(n_switches=switches, seed=seed))
    return remove_deadlocks(design).design


def _time_point(design, *, max_cycles: int, injection_scale: float, seed: int, rounds: int):
    """Min-of-rounds wall time for both engines plus stats equality."""
    config = SimulationConfig(injection_scale=injection_scale, seed=seed)
    legacy_times: List[float] = []
    compiled_times: List[float] = []
    legacy_stats = compiled_stats = None
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        legacy_stats = simulate_design(
            design, max_cycles=max_cycles, config=config, engine="legacy"
        )
        legacy_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        compiled_stats = simulate_design(
            design, max_cycles=max_cycles, config=config, engine="compiled"
        )
        compiled_times.append(time.perf_counter() - start)
    legacy_s, compiled_s = min(legacy_times), min(compiled_times)
    return {
        "design": design.name,
        "max_cycles": max_cycles,
        "cycles_run": compiled_stats.cycles_run,
        "injection_scale": injection_scale,
        "packets_delivered": compiled_stats.packets_delivered,
        "average_latency": round(compiled_stats.average_latency, 2),
        "legacy_seconds": legacy_s,
        "compiled_seconds": compiled_s,
        "speedup": legacy_s / compiled_s if compiled_s > 0 else float("inf"),
        "stats_identical": _stats_identical(legacy_stats, compiled_stats),
    }


def run_simulation_benchmark(
    *,
    benchmark: str = "D36_8",
    switches: int = 35,
    seed: int = 0,
    rounds: int = 3,
    max_cycles: int = 2000,
    cross_check_benchmarks: Optional[List[str]] = None,
    cross_check_cycles: int = 600,
) -> dict:
    """Time compiled vs. legacy and cross-check benchmarks x scenarios."""
    counters.reset()
    points = []

    protected = _protected_design(benchmark, switches, seed)
    points.append(
        _time_point(
            protected,
            max_cycles=max_cycles,
            injection_scale=1.0,
            seed=seed,
            rounds=rounds,
        )
    )
    mesh = family_design(
        "mesh",
        default_mesh_traffic(8, 8),
        {"rows": 8, "cols": 8, "routing": "xy"},
        name="mesh8x8",
    )
    points.append(
        _time_point(
            mesh,
            max_cycles=max_cycles,
            injection_scale=1.0,
            seed=seed,
            rounds=rounds,
        )
    )

    names = (
        cross_check_benchmarks
        if cross_check_benchmarks is not None
        else list_benchmarks()
    )
    cross_checks = []
    for name in names:
        design = _protected_design(name, CROSS_CHECK_SWITCHES, seed)
        for scenario in SCENARIOS:
            config = SimulationConfig(
                injection_scale=2.0, seed=seed, traffic_scenario=scenario
            )
            # cross_check=True re-runs the legacy engine on an identical
            # fresh configuration and raises on any stats divergence.
            stats = simulate_design(
                design,
                max_cycles=cross_check_cycles,
                config=config,
                engine="compiled",
                cross_check=True,
            )
            cross_checks.append(
                {
                    "benchmark": name,
                    "scenario": scenario,
                    "packets_delivered": stats.packets_delivered,
                    "deadlocked": stats.deadlock_detected,
                    "identical": True,  # cross_check raises otherwise
                }
            )

    # The five scenario cross-checks per design (and every timed round past
    # the first) must be served by the design's cached simulation template.
    template_reuse = counters.snapshot()
    return {
        "benchmark": benchmark,
        "switches": switches,
        "seed": seed,
        "rounds": max(rounds, 1),
        "points": points,
        "cross_checks": cross_checks,
        "headline_speedup": points[0]["speedup"],
        "all_stats_identical": all(p["stats_identical"] for p in points),
        "template_reuse": template_reuse,
    }


def _persist(data: dict) -> None:
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(data, indent=2, sort_keys=True)
    (results_dir / "simulation.json").write_text(payload)
    ROOT_RESULT_PATH.write_text(payload + "\n")


def _report(data: dict) -> str:
    lines = [
        f"simulation engine benchmark — {data['benchmark']} (seed {data['seed']})",
        f"{'design':>22} {'cycles':>7} {'legacy':>10} {'compiled':>10} "
        f"{'speedup':>8} {'identical':>9}",
    ]
    for point in data["points"]:
        lines.append(
            f"{point['design']:>22} {point['cycles_run']:>7} "
            f"{point['legacy_seconds'] * 1e3:>8.0f}ms "
            f"{point['compiled_seconds'] * 1e3:>8.0f}ms "
            f"{point['speedup']:>7.2f}x {str(point['stats_identical']):>9}"
        )
    benchmarks = sorted({c["benchmark"] for c in data["cross_checks"]})
    scenarios = sorted({c["scenario"] for c in data["cross_checks"]})
    lines.append(
        f"  cross-check: {len(benchmarks)} benchmark(s) @ {CROSS_CHECK_SWITCHES} "
        f"switches x {len(scenarios)} scenario(s) — all stats identical"
    )
    reuse = data["template_reuse"]
    lines.append(
        f"  sim templates: {reuse['sim_template_builds']} compiled, "
        f"{reuse['sim_template_reuses']} reused"
    )
    return "\n".join(lines)


def _check(data: dict, threshold: float) -> List[str]:
    failures = []
    if not data["all_stats_identical"]:
        failures.append("engines disagreed on a timed run's statistics")
    if data["headline_speedup"] < threshold:
        failures.append(
            f"speedup {data['headline_speedup']:.2f}x below {threshold}x at "
            f"the headline point"
        )
    reuse = data["template_reuse"]
    if reuse["sim_template_reuses"] <= 0:
        failures.append(
            "repeated simulations of one design recompiled the simulation "
            "template instead of reusing the design context's cached one"
        )
    return failures


def test_simulation_speedup(benchmark, context_counters):
    """Harness entry: full configuration, asserts the 3x acceptance bar."""
    data = benchmark.pedantic(run_simulation_benchmark, rounds=1, iterations=1)
    print("\n" + _report(data))
    _persist(data)
    failures = _check(data, FULL_SPEEDUP_THRESHOLD)
    assert not failures, "; ".join(failures)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="D36_8")
    parser.add_argument("--switches", type=int, default=35)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI configuration (20 switches, short runs, 2-benchmark "
        "cross-check, looser threshold)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        data = run_simulation_benchmark(
            benchmark=args.benchmark,
            switches=20,
            seed=args.seed,
            rounds=1,
            max_cycles=600,
            cross_check_benchmarks=["D26_media", "D36_8"],
            cross_check_cycles=250,
        )
        threshold = SMOKE_SPEEDUP_THRESHOLD
    else:
        data = run_simulation_benchmark(
            benchmark=args.benchmark,
            switches=args.switches,
            seed=args.seed,
            rounds=args.rounds,
        )
        threshold = FULL_SPEEDUP_THRESHOLD
    print(_report(data))
    _persist(data)
    print(f"wrote {ROOT_RESULT_PATH}")
    failures = _check(data, threshold)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
