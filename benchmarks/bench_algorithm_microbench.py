"""Microbenchmarks of the algorithm's building blocks on a realistic design.

These are classic pytest-benchmark timings (multiple rounds) of the hot
paths: CDG construction, smallest-cycle search, cost-table evaluation and a
full removal pass, all on the 14-switch D36_8 design whose CDG contains
cycles.  They document where the runtime of the end-to-end flow goes.
"""

from __future__ import annotations

import pytest

from repro.benchmarks.registry import get_benchmark
from repro.core.cdg import build_cdg
from repro.core.cost import build_cost_table
from repro.core.cycles import find_smallest_cycle
from repro.core.removal import remove_deadlocks
from repro.routing.ordering import apply_resource_ordering
from repro.synthesis.builder import SynthesisConfig, synthesize_design


@pytest.fixture(scope="module")
def cyclic_design():
    traffic = get_benchmark("D36_8")
    return synthesize_design(traffic, SynthesisConfig(n_switches=14))


def test_cdg_construction(benchmark, cyclic_design):
    """Build the CDG of the 14-switch D36_8 design."""
    cdg = benchmark(build_cdg, cyclic_design)
    assert cdg.channel_count > 0


def test_smallest_cycle_search(benchmark, cyclic_design):
    """BFS smallest-cycle search over the full CDG."""
    cdg = build_cdg(cyclic_design)
    cycle = benchmark(find_smallest_cycle, cdg)
    assert cycle


def test_cost_table_evaluation(benchmark, cyclic_design):
    """Forward cost table for the smallest cycle of the design."""
    cdg = build_cdg(cyclic_design)
    cycle = find_smallest_cycle(cdg)
    table = benchmark(build_cost_table, cycle, cyclic_design.routes, "forward")
    assert table.best_cost >= 1


def test_full_removal(benchmark, cyclic_design):
    """Complete Algorithm 1 run (copying the design each round)."""
    result = benchmark(remove_deadlocks, cyclic_design)
    assert result.added_vc_count >= 1


def test_resource_ordering_baseline(benchmark, cyclic_design):
    """The resource-ordering baseline on the same design."""
    result = benchmark(apply_resource_ordering, cyclic_design)
    assert result.extra_vcs > 0


def test_topology_synthesis(benchmark):
    """Synthesis of the 14-switch D36_8 design (the substrate cost)."""
    traffic = get_benchmark("D36_8")
    design = benchmark.pedantic(
        synthesize_design,
        args=(traffic, SynthesisConfig(n_switches=14)),
        rounds=3,
        iterations=1,
    )
    assert design.topology.switch_count == 14
