"""Section 5 overhead claim: deadlock removal vs. unprotected designs.

"We also compared the power consumption of the topologies after removing
the deadlocks with the original designs where deadlocks were not removed.
From the experiments, we observed only a small overhead on power (of less
than 5%) [...] the total area, power overhead to remove deadlocks is less
than 5%."
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.analysis.metrics import format_table
from repro.analysis.sweeps import overhead_vs_unprotected


def test_overhead_vs_unprotected_designs(benchmark):
    """Regenerate the <5% power/area overhead table."""
    data = benchmark.pedantic(overhead_vs_unprotected, rounds=1, iterations=1)

    print(banner("Section 5 — overhead of deadlock removal vs. unprotected designs"))
    rows = []
    for name, power, area in zip(
        data["benchmarks"], data["power_overhead_percent"], data["area_overhead_percent"]
    ):
        rows.append([name, round(power, 2), round(area, 2)])
    print(format_table(["benchmark", "power overhead [%]", "area overhead [%]"], rows))
    print(
        f"\naverage power overhead: {data['average_power_overhead_percent']:.2f}% "
        "(paper: <5%)"
    )
    print(
        f"average area overhead : {data['average_area_overhead_percent']:.2f}% "
        "(paper: <5%)"
    )
    save_results("overhead_vs_unprotected", data)

    assert data["average_power_overhead_percent"] < 5.0
    assert data["average_area_overhead_percent"] < 5.0
    assert all(v >= 0.0 for v in data["power_overhead_percent"])
