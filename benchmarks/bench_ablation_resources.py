"""Ablation — virtual channels vs. parallel physical links.

Section 1 of the paper: the method "adds virtual channels (VCs) minimally
to remove deadlocks (please note that is also possible to add physical
channels if the NoC architecture does not support VCs)".  This benchmark
quantifies the price of the physical-channel option: the same dependencies
get broken (same number of added channels), but each physical channel brings
extra switch ports, so area and power grow more than with VCs.
"""

from __future__ import annotations

from conftest import banner, save_results

from repro.analysis.metrics import format_table
from repro.benchmarks.registry import get_benchmark
from repro.core.removal import remove_deadlocks
from repro.power.estimator import estimate_area, estimate_power
from repro.synthesis.builder import SynthesisConfig, synthesize_design

CONFIGS = [("D36_6", 14), ("D36_8", 14), ("D36_8", 22)]


def test_virtual_vs_physical_channels(benchmark):
    """Compare the two resource modes on the cyclic benchmark designs."""
    def run():
        rows = []
        for name, switches in CONFIGS:
            traffic = get_benchmark(name)
            design = synthesize_design(traffic, SynthesisConfig(n_switches=switches))
            virtual = remove_deadlocks(design)
            physical = remove_deadlocks(design, resource_mode="physical")
            rows.append(
                {
                    "design": f"{name}@{switches}sw",
                    "channels_added": virtual.added_vc_count,
                    "virtual_area_mm2": estimate_area(virtual.design).total_area_mm2,
                    "physical_area_mm2": estimate_area(physical.design).total_area_mm2,
                    "virtual_power_mw": estimate_power(virtual.design).total_power_mw,
                    "physical_power_mw": estimate_power(physical.design).total_power_mw,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(banner("Ablation — extra VCs vs. parallel physical links"))
    table_rows = []
    for r in rows:
        area_penalty = (r["physical_area_mm2"] / r["virtual_area_mm2"] - 1) * 100
        power_penalty = (r["physical_power_mw"] / r["virtual_power_mw"] - 1) * 100
        table_rows.append(
            [
                r["design"],
                r["channels_added"],
                round(r["virtual_area_mm2"], 3),
                round(r["physical_area_mm2"], 3),
                round(area_penalty, 2),
                round(power_penalty, 2),
            ]
        )
    print(
        format_table(
            [
                "design",
                "channels added",
                "area w/ VCs [mm^2]",
                "area w/ links [mm^2]",
                "area penalty [%]",
                "power penalty [%]",
            ],
            table_rows,
        )
    )
    save_results("ablation_virtual_vs_physical", rows)
    for r in rows:
        assert r["physical_area_mm2"] >= r["virtual_area_mm2"]
        assert r["physical_power_mw"] >= r["virtual_power_mw"]
