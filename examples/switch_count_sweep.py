#!/usr/bin/env python3
"""Reproduce the shape of Figures 8 and 9: VC overhead vs. switch count.

For a chosen benchmark the script declares one :class:`repro.api.RunSpec`
per switch count, bundles them into an :class:`repro.api.ExperimentPlan`
and executes the plan through :class:`repro.api.Runner` — the same facade
behind ``noc-deadlock run <plan.json>``.  For each point it reports the
number of extra virtual channels required by the paper's deadlock-removal
algorithm and by the resource-ordering baseline.  The take-away the paper
plots: removal stays near zero while ordering grows with the route lengths.

Run with::

    python examples/switch_count_sweep.py                 # D26_media (Figure 8)
    python examples/switch_count_sweep.py D36_8           # Figure 9
    python examples/switch_count_sweep.py D36_8 10 14 18  # custom switch counts

Pass a cache directory to make re-runs (near) instant::

    NOC_SWEEP_CACHE=.noc-cache python examples/switch_count_sweep.py
"""

import os
import sys

from repro import list_benchmarks
from repro.analysis.metrics import format_table
from repro.api import ExperimentPlan, Runner
from repro.api.reports import FIGURE8_SWITCH_COUNTS, FIGURE9_SWITCH_COUNTS


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "D26_media"
    if benchmark not in list_benchmarks():
        print(f"unknown benchmark {benchmark!r}; choose from {list_benchmarks()}")
        raise SystemExit(2)
    if len(sys.argv) > 2:
        switch_counts = [int(arg) for arg in sys.argv[2:]]
    elif benchmark == "D26_media":
        switch_counts = FIGURE8_SWITCH_COUNTS
    else:
        switch_counts = FIGURE9_SWITCH_COUNTS

    # One declarative plan instead of a hand-wired loop; the plan could be
    # dumped with plan.save(...) and replayed via `noc-deadlock run`.
    plan = ExperimentPlan.from_grid(
        f"{benchmark}-switch-sweep", benchmark, switch_counts
    )
    runner = Runner(cache_dir=os.environ.get("NOC_SWEEP_CACHE"))

    print(f"benchmark {benchmark}, switch counts {switch_counts}")
    outcome = runner.run(plan)
    if outcome.cache_hits:
        print(f"({outcome.cache_hits} point(s) served from the artifact cache)")

    rows = []
    for result in outcome.results:
        rows.append(
            [
                result.switch_count,
                result.removal_extra_vcs,
                result.ordering_extra_vcs,
                round(result.vc_reduction_percent, 1),
                round(result.removal_runtime_s, 3),
            ]
        )
    print()
    print(
        format_table(
            [
                "switches",
                "removal VCs",
                "ordering VCs",
                "VC reduction [%]",
                "removal runtime [s]",
            ],
            rows,
        )
    )

    total_removal = sum(r.removal_extra_vcs for r in outcome.results)
    total_ordering = sum(r.ordering_extra_vcs for r in outcome.results)
    print(
        f"\ntotals over the sweep: removal {total_removal} VCs vs. "
        f"ordering {total_ordering} VCs"
    )


if __name__ == "__main__":
    main()
