#!/usr/bin/env python3
"""Reproduce the shape of Figures 8 and 9: VC overhead vs. switch count.

For a chosen benchmark the script synthesizes application-specific
topologies over a range of switch counts and, for each, reports the number
of extra virtual channels required by the paper's deadlock-removal
algorithm and by the resource-ordering baseline.  The take-away the paper
plots: removal stays near zero while ordering grows with the route lengths.

Run with::

    python examples/switch_count_sweep.py                 # D26_media (Figure 8)
    python examples/switch_count_sweep.py D36_8           # Figure 9
    python examples/switch_count_sweep.py D36_8 10 14 18  # custom switch counts
"""

import sys

from repro import list_benchmarks, sweep_switch_counts
from repro.analysis.metrics import format_table
from repro.analysis.sweeps import FIGURE8_SWITCH_COUNTS, FIGURE9_SWITCH_COUNTS


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "D26_media"
    if benchmark not in list_benchmarks():
        print(f"unknown benchmark {benchmark!r}; choose from {list_benchmarks()}")
        raise SystemExit(2)
    if len(sys.argv) > 2:
        switch_counts = [int(arg) for arg in sys.argv[2:]]
    elif benchmark == "D26_media":
        switch_counts = FIGURE8_SWITCH_COUNTS
    else:
        switch_counts = FIGURE9_SWITCH_COUNTS

    print(f"benchmark {benchmark}, switch counts {switch_counts}")
    comparisons = sweep_switch_counts(benchmark, switch_counts)

    rows = []
    for comparison in comparisons:
        rows.append(
            [
                comparison.switch_count,
                comparison.removal_extra_vcs,
                comparison.ordering_extra_vcs,
                round(comparison.vc_reduction_percent, 1),
                round(comparison.removal.runtime_seconds, 3),
            ]
        )
    print()
    print(
        format_table(
            [
                "switches",
                "removal VCs",
                "ordering VCs",
                "VC reduction [%]",
                "removal runtime [s]",
            ],
            rows,
        )
    )

    total_removal = sum(c.removal_extra_vcs for c in comparisons)
    total_ordering = sum(c.ordering_extra_vcs for c in comparisons)
    print(
        f"\ntotals over the sweep: removal {total_removal} VCs vs. "
        f"ordering {total_ordering} VCs"
    )


if __name__ == "__main__":
    main()
