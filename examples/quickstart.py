#!/usr/bin/env python3
"""Quickstart: the paper's worked example (Figures 1-4 and Table 1).

Builds the 4-switch ring of Figure 1 with the four flows F1..F4, shows that
its channel dependency graph contains the cycle of Figure 2, prints the
forward cost table (Table 1), removes the deadlock with a single extra
virtual channel, and compares against the resource-ordering baseline.
Finally it runs one point of the paper's evaluation grid through the
declarative experiment API (`repro.api`) — the facade behind
``noc-deadlock run <plan.json>``.

Run with::

    python examples/quickstart.py
"""

from repro import (
    apply_resource_ordering,
    build_cdg,
    build_cost_table,
    find_smallest_cycle,
    paper_ring_design,
    remove_deadlocks,
)
from repro.api import Runner, RunSpec


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The input design: topology graph, communication flows, routes.
    # ------------------------------------------------------------------
    design = paper_ring_design()
    print(f"design: {design.name}")
    print(f"  switches : {design.topology.switches}")
    print(f"  links    : {[link.name for link in design.topology.links]}")
    for flow_name, route in design.routes.items():
        print(f"  {flow_name}: " + " -> ".join(ch.name for ch in route))

    # ------------------------------------------------------------------
    # 2. The channel dependency graph (Figure 2) and its cycle.
    # ------------------------------------------------------------------
    cdg = build_cdg(design)
    print(f"\nCDG: {cdg.channel_count} channels, {cdg.edge_count} dependencies")
    cycle = find_smallest_cycle(cdg)
    print("smallest cycle: " + " -> ".join(ch.name for ch in cycle))

    # ------------------------------------------------------------------
    # 3. The cost table of Algorithm 2 (Table 1 of the paper).
    # ------------------------------------------------------------------
    table = build_cost_table(cycle, design.routes, direction="forward")
    print()
    print(table.to_text())

    # ------------------------------------------------------------------
    # 4. Remove the deadlock (Algorithm 1) and inspect the result.
    # ------------------------------------------------------------------
    result = remove_deadlocks(design)
    print()
    print(result.summary())
    fixed_cdg = build_cdg(result.design)
    print(f"CDG after removal is acyclic: {fixed_cdg.is_acyclic()}")
    for flow_name, route in result.design.routes.items():
        print(f"  {flow_name}: " + " -> ".join(ch.name for ch in route))

    # ------------------------------------------------------------------
    # 5. Compare against the resource-ordering baseline.
    # ------------------------------------------------------------------
    ordering = apply_resource_ordering(design)
    print()
    print(ordering.summary())
    print(
        f"\nextra VCs -> deadlock removal: {result.added_vc_count}, "
        f"resource ordering: {ordering.extra_vcs}"
    )

    # ------------------------------------------------------------------
    # 6. The same comparison, declaratively: one RunSpec of the paper's
    #    evaluation grid executed through the experiment API.  Specs
    #    serialize to JSON, batch into ExperimentPlans and cache their
    #    artifacts — see `noc-deadlock run --help` and plans/.
    # ------------------------------------------------------------------
    spec = RunSpec(benchmark="D26_media", switch_count=8)
    run = Runner().run_spec(spec)
    print(
        f"\ndeclarative run of {spec.benchmark} @ {spec.switch_count} switches: "
        f"removal {run.removal_extra_vcs} VC(s) vs. ordering "
        f"{run.ordering_extra_vcs} VC(s) "
        f"({run.vc_reduction_percent:.1f}% fewer)"
    )


if __name__ == "__main__":
    main()
