#!/usr/bin/env python3
"""Protecting a hand-built irregular topology.

The paper stresses that its method "can be applied to any NoC topology and
routing function".  This example builds an irregular topology by hand (the
kind of structure a designer might sketch for a heterogeneous SoC: a fast
cluster ring plus a few long-range links), routes its flows with plain
shortest paths, and then uses the library to find and remove the resulting
deadlock potential — something turn-prohibition methods could only have done
by constraining the topology up front.

Run with::

    python examples/custom_topology_from_scratch.py
"""

from repro import (
    CommunicationGraph,
    NocDesign,
    Topology,
    build_cdg,
    compute_routes,
    estimate_area,
    estimate_power,
    remove_deadlocks,
    validate_design,
)
from repro.core.cycles import find_all_cycles
from repro.model.serialization import save_design


def build_design() -> NocDesign:
    """An 8-switch irregular topology: a 6-switch unidirectional fast ring
    for the streaming cluster plus two memory switches hanging off it."""
    topology = Topology("irregular8")
    ring = [f"r{i}" for i in range(6)]
    topology.add_switches(ring + ["m0", "m1"])
    # Unidirectional streaming ring (cheap, high clock) ...
    for i, switch in enumerate(ring):
        topology.add_link(switch, ring[(i + 1) % len(ring)])
    # ... and bidirectional spurs to the two memory switches.
    topology.add_bidirectional_link("r0", "m0")
    topology.add_bidirectional_link("r3", "m1")
    # One long-range shortcut the floorplan allows.
    topology.add_bidirectional_link("r1", "r4")

    traffic = CommunicationGraph("irregular8_traffic")
    cores = {
        "cam": "r0", "isp": "r1", "enc": "r2", "gpu": "r3", "disp": "r4",
        "dsp": "r5", "ddr0": "m0", "ddr1": "m1",
    }
    traffic.add_cores(sorted(cores))
    flows = [
        ("cam", "isp", 300), ("isp", "enc", 280), ("enc", "ddr0", 250),
        ("ddr0", "disp", 260), ("gpu", "ddr1", 400), ("ddr1", "gpu", 380),
        ("dsp", "ddr0", 120), ("disp", "dsp", 60), ("gpu", "disp", 200),
        ("dsp", "cam", 40), ("isp", "ddr1", 90), ("enc", "gpu", 70),
    ]
    for i, (src, dst, bandwidth) in enumerate(flows):
        traffic.add_flow(f"f{i}", src, dst, bandwidth)

    design = NocDesign(
        name="irregular8",
        topology=topology,
        traffic=traffic,
        core_map=dict(cores),
    )
    compute_routes(design)
    validate_design(design)
    return design


def main() -> None:
    design = build_design()
    print(f"design {design.name}: {design.topology.switch_count} switches, "
          f"{design.topology.link_count} links, {design.traffic.flow_count} flows")

    cdg = build_cdg(design)
    cycles = find_all_cycles(cdg, limit=100)
    print(f"CDG: {cdg.channel_count} channels, {cdg.edge_count} dependencies, "
          f"{len(cycles)} cycle(s)")
    for cycle in cycles[:3]:
        print("  cycle: " + " -> ".join(ch.name for ch in cycle))

    result = remove_deadlocks(design)
    print()
    print(result.summary())

    before_power = estimate_power(design).total_power_mw
    after_power = estimate_power(result.design).total_power_mw
    before_area = estimate_area(design).total_area_mm2
    after_area = estimate_area(result.design).total_area_mm2
    print()
    print(f"power: {before_power:.2f} mW -> {after_power:.2f} mW "
          f"(+{(after_power / before_power - 1) * 100:.2f}%)")
    print(f"area : {before_area:.3f} mm^2 -> {after_area:.3f} mm^2 "
          f"(+{(after_area / before_area - 1) * 100:.2f}%)")

    path = save_design(result.design, "irregular8_deadlock_free.json")
    print(f"\ndeadlock-free design written to {path}")


if __name__ == "__main__":
    main()
