#!/usr/bin/env python3
"""Watching a wormhole deadlock happen — and not happen.

The paper's guarantee is structural: an acyclic channel dependency graph
means no routing deadlock can occur.  This example demonstrates the runtime
side of that guarantee with the flit-level wormhole simulator:

1. the unmodified ring design (cyclic CDG) is driven hard and deadlocks —
   the simulator reports the cycle of channels stuck in a circular wait;
2. the same design after deadlock removal runs the same traffic without
   ever stalling;
3. the resource-ordering variant also runs deadlock free, but needed three
   times as many extra virtual channels to get there.

Run with::

    python examples/deadlock_simulation.py
"""

from repro import (
    SimulationConfig,
    apply_resource_ordering,
    paper_ring_design,
    remove_deadlocks,
    simulate_design,
)

#: Aggressive traffic: six times the nominal bandwidth, tiny buffers, long
#: packets — the regime in which a cyclic design will lock up.
STRESS = SimulationConfig(injection_scale=6.0, buffer_depth=2, seed=1)
MAX_CYCLES = 5000


def report(title: str, stats) -> None:
    print(f"\n=== {title} ===")
    print(stats.summary())
    if stats.deadlock_detected:
        print("  circular wait over channels:")
        for channel in stats.deadlocked_channels:
            print(f"    {channel.name}")


def main() -> None:
    design = paper_ring_design()

    # 1. The unprotected design deadlocks under pressure.
    unprotected_stats = simulate_design(design, max_cycles=MAX_CYCLES, config=STRESS)
    report("unprotected ring (cyclic CDG)", unprotected_stats)

    # 2. After deadlock removal the same traffic flows freely.
    removal = remove_deadlocks(design)
    removal_stats = simulate_design(removal.design, max_cycles=MAX_CYCLES, config=STRESS)
    report(f"after deadlock removal (+{removal.added_vc_count} VC)", removal_stats)

    # 3. Resource ordering is also safe, at a higher VC cost.
    ordering = apply_resource_ordering(design)
    ordering_stats = simulate_design(ordering.design, max_cycles=MAX_CYCLES, config=STRESS)
    report(f"resource ordering (+{ordering.extra_vcs} VCs)", ordering_stats)

    print("\nsummary")
    print(f"  unprotected      : deadlock = {unprotected_stats.deadlock_detected}")
    print(
        f"  deadlock removal : deadlock = {removal_stats.deadlock_detected}, "
        f"extra VCs = {removal.added_vc_count}, "
        f"avg latency = {removal_stats.average_latency:.1f} cycles"
    )
    print(
        f"  resource ordering: deadlock = {ordering_stats.deadlock_detected}, "
        f"extra VCs = {ordering.extra_vcs}, "
        f"avg latency = {ordering_stats.average_latency:.1f} cycles"
    )


if __name__ == "__main__":
    main()
