#!/usr/bin/env python3
"""Design flow for an application-specific SoC NoC (the paper's use case).

Takes the D36_8 multimedia benchmark (36 cores, each talking to 8 partners),
synthesizes a custom topology for a chosen switch count, checks it for
potential deadlocks, removes them with the paper's algorithm, and reports
the cost in virtual channels, power and area against both the unprotected
design and the resource-ordering baseline.

Run with::

    python examples/custom_soc_design.py [switch_count]
"""

import sys

from repro import (
    SynthesisConfig,
    apply_resource_ordering,
    build_cdg,
    estimate_area,
    estimate_power,
    get_benchmark,
    remove_deadlocks,
    synthesize_design,
)
from repro.analysis.metrics import format_table, percent_reduction
from repro.core.cycles import count_cycles


def main() -> None:
    switch_count = int(sys.argv[1]) if len(sys.argv) > 1 else 14

    # ------------------------------------------------------------------
    # 1. Load the benchmark traffic and synthesize a custom topology.
    # ------------------------------------------------------------------
    traffic = get_benchmark("D36_8")
    print(f"benchmark: {traffic.name} ({traffic.core_count} cores, "
          f"{traffic.flow_count} flows, {traffic.total_bandwidth:.0f} MB/s)")

    design = synthesize_design(traffic, SynthesisConfig(n_switches=switch_count))
    print(f"synthesized topology: {design.topology.switch_count} switches, "
          f"{design.topology.link_count} directed links")

    # ------------------------------------------------------------------
    # 2. Deadlock analysis of the raw design.
    # ------------------------------------------------------------------
    cdg = build_cdg(design)
    if cdg.is_acyclic():
        print("the synthesized routes are already deadlock free")
    else:
        cycles = count_cycles(cdg, limit=1000)
        print(f"the CDG has {cycles} cycle(s): the design can deadlock")

    # ------------------------------------------------------------------
    # 3. Protect it: the paper's removal algorithm vs. resource ordering.
    # ------------------------------------------------------------------
    removal = remove_deadlocks(design)
    ordering = apply_resource_ordering(design)
    print()
    print(removal.summary())
    print()
    print(ordering.summary())

    # ------------------------------------------------------------------
    # 4. Power and area of the three variants.
    # ------------------------------------------------------------------
    variants = {
        "unprotected": design,
        "deadlock removal": removal.design,
        "resource ordering": ordering.design,
    }
    rows = []
    for name, variant in variants.items():
        power = estimate_power(variant).total_power_mw
        area = estimate_area(variant).total_area_mm2
        rows.append([name, variant.extra_vc_count, round(power, 1), round(area, 3)])
    print()
    print(format_table(["variant", "extra VCs", "power [mW]", "area [mm^2]"], rows))

    removal_power = estimate_power(removal.design).total_power_mw
    ordering_power = estimate_power(ordering.design).total_power_mw
    removal_area = estimate_area(removal.design).total_area_mm2
    ordering_area = estimate_area(ordering.design).total_area_mm2
    print()
    print(
        "deadlock removal vs. resource ordering: "
        f"{percent_reduction(ordering.extra_vcs, removal.added_vc_count):.0f}% fewer VCs, "
        f"{percent_reduction(ordering_power, removal_power):.1f}% less power, "
        f"{percent_reduction(ordering_area, removal_area):.1f}% less area"
    )


if __name__ == "__main__":
    main()
